"""Related-work check — the section II ordering, measured.

The paper argues (section II) that Magnet-style structured subscription
clustering "cannot fully capture the correlation between subscriptions,
for it is bounded to one dimensional space".  With the Magnet-like
baseline implemented, the claim becomes measurable: on a two-community
subscription workload the 1-D embedding collapses each node to the
midpoint of its communities, per-topic subscribers stay scattered across
combo-midpoints, and the relay savings over plain RVR are marginal —
while the hybrid (unstructured clustering + structured routing) cuts
overhead by an order of magnitude.
"""

from benchmarks.conftest import emit
from repro.baselines.magnet import MagnetProtocol
from repro.baselines.rvr import RvrProtocol
from repro.core.config import VitisConfig
from repro.experiments import scaled
from repro.experiments.runner import build_vitis, converge, measure
from repro.workloads.subscriptions import high_correlation_subscriptions


def run_ordering(n_nodes: int, n_topics: int, events: int, seed: int):
    subs = high_correlation_subscriptions(n_nodes, n_topics, seed=seed)
    cfg = VitisConfig(rt_size=15)
    rows = []

    for name, proto in (
        ("magnet", MagnetProtocol(subs, cfg, seed=seed, relay_every=0)),
        ("rvr", RvrProtocol(subs, cfg, seed=seed, relay_every=0)),
    ):
        converge(proto)
        proto.finalize()
        col = measure(proto, events, seed=seed + 1)
        row = {"system": name}
        row.update(col.summary())
        rows.append(row)

    vitis = build_vitis(subs, cfg, seed=seed)
    col = measure(vitis, events, seed=seed + 1)
    row = {"system": "vitis"}
    row.update(col.summary())
    rows.append(row)
    return rows


def test_magnet_ordering(once):
    rows = once(
        run_ordering,
        n_nodes=scaled(300),
        n_topics=scaled(1000),
        events=200,
        seed=1,
    )
    emit("Section II ordering — Vitis ≪ Magnet ≤ RVR (high correlation)", rows)
    by = {r["system"]: r for r in rows}

    assert all(r["hit_ratio"] >= 0.995 for r in rows)
    # 1-D clustering helps at most marginally over subscription-oblivious
    # structure on a multi-community workload...
    assert by["magnet"]["traffic_overhead_pct"] <= 1.02 * by["rvr"]["traffic_overhead_pct"]
    # ...while the hybrid dominates both.
    assert by["vitis"]["traffic_overhead_pct"] < 0.4 * by["magnet"]["traffic_overhead_pct"]

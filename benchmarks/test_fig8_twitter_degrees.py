"""Figs. 8 & 9 — the (synthetic) Twitter trace: degree distributions and
summary statistics.

Paper shape: both in- and out-degree follow a power law with fitted
exponent ≈1.65; the summary table (Fig. 9) reports users, relations and
degree statistics.  The benchmark regenerates both from the synthetic
trace and checks the fits.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments import scaled
from repro.experiments.scenarios import fig8_twitter_degrees, fig9_twitter_summary


def test_fig8_twitter_degree_distribution(once):
    n_users = scaled(20000)
    rows = once(fig8_twitter_degrees, n_users=n_users, seed=1)
    # Print log-binned series (the paper's log-log plot) rather than the
    # raw histogram, which has thousands of rows.
    from repro.analysis.distributions import log_binned_histogram

    for kind in ("in", "out"):
        samples = [r["degree"] for r in rows if r["kind"] == kind
                   for _ in range(r["frequency"])]
        centers, density = log_binned_histogram(samples, n_bins=12)
        emit(
            f"Fig. 8 — {kind}-degree distribution (log-binned)",
            [{"degree": round(c, 1), "density": d} for c, d in zip(centers, density)],
        )

    in_total = sum(r["frequency"] for r in rows if r["kind"] == "in")
    assert in_total == n_users
    # Heavy tail: maximum degree far above the mean.
    degrees = [r["degree"] for r in rows if r["kind"] == "in" for _ in range(r["frequency"])]
    assert max(degrees) > 10 * np.mean(degrees)


def test_fig9_twitter_summary(once):
    summary = once(fig9_twitter_summary, n_users=scaled(20000), seed=1)
    emit(
        "Fig. 9 — Twitter trace statistics",
        [{"statistic": k, "value": round(v, 3)} for k, v in summary.items()],
    )
    # The paper's fit: α ≈ 1.65 for both distributions.
    assert abs(summary["alpha_in"] - 1.65) < 0.25
    assert abs(summary["alpha_out"] - 1.65) < 0.25
    assert summary["relations"] > summary["users"]

"""Ablation — navigability vs small-world link count, and management cost.

1. Symphony's routing claim (paper section III-A1): greedy lookup cost is
   O((1/k)·log²N) — more sw links, fewer hops — while the freed friend
   slots are what keep traffic overhead low: the Fig. 4 trade-off, probed
   directly at the lookup level.
2. The section II scalability argument: overlay-management cost per node
   is bounded for Vitis/RVR (routing-table size) but follows the
   heavy-tailed subscription distribution for unbounded OPT.
"""

from benchmarks.conftest import emit
from repro.experiments import scaled
from repro.experiments.scenarios import ablation_sw_links, management_cost


def test_ablation_sw_links(once):
    rows = once(
        ablation_sw_links,
        n_nodes=scaled(300),
        n_topics=scaled(1000),
        sw_links=(1, 3, 7, 13),
        seed=1,
    )
    emit("Ablation — greedy-lookup cost vs #sw links (rt=15, random subs)", rows)
    by = {r["n_sw_links"]: r for r in rows}

    # More structural links → cheaper lookups.  The slope is shallow —
    # greedy routing exploits *all* links, and friend links double as
    # shortcuts — so the trend is asserted loosely per step and firmly
    # end-to-end.
    assert by[13]["mean_lookup_hops"] < by[1]["mean_lookup_hops"]
    hops = [by[k]["mean_lookup_hops"] for k in (1, 3, 7, 13)]
    assert all(a >= b - 0.5 for a, b in zip(hops, hops[1:]))
    # ...but at the price of traffic overhead (fewer friend links).
    assert by[13]["traffic_overhead_pct"] > by[1]["traffic_overhead_pct"]
    # Lookups stay consistent and within the theoretical yardstick.
    for r in rows:
        assert r["consistency_rate"] == 1.0
        assert r["mean_lookup_hops"] <= r["bound_log2N_over_k"] * 3


def test_management_cost(once):
    rows = once(
        management_cost,
        n_users=scaled(4000),
        sample_size=scaled(400),
        seed=1,
    )
    emit("Management cost per node, Twitter workload (section II argument)", rows)
    by = {r["system"]: r for r in rows}

    # Bounded-degree systems: max maintained links == the configured bound.
    assert by["vitis"]["max_links_per_node"] <= 15
    assert by["rvr"]["max_links_per_node"] <= 15
    assert by["opt-bounded"]["max_links_per_node"] <= 15
    # Unbounded OPT: the tail blows past any bound.
    assert by["opt-unbounded"]["max_links_per_node"] > 2 * 15
    # And its per-node message cost exceeds Vitis's.
    assert (
        by["opt-unbounded"]["per_node_msgs_per_cycle"]
        > by["opt-bounded"]["per_node_msgs_per_cycle"]
    )


def test_ablation_proximity(once):
    from repro.experiments.scenarios import ablation_proximity

    rows = once(
        ablation_proximity,
        n_nodes=scaled(300),
        n_topics=scaled(1000),
        betas=(0.0, 0.2, 0.5),
        seed=1,
    )
    emit("Ablation — proximity-aware utility (section III-A2 extension)", rows)
    by = {r["beta"]: r for r in rows}

    # Moderate blending cuts the physical cost of dissemination...
    assert by[0.2]["mean_physical_cost"] < by[0.0]["mean_physical_cost"]
    # ...without giving up delivery.
    assert by[0.2]["hit_ratio"] >= 0.999
    # Heavy blending erodes interest clustering: overhead climbs.
    assert by[0.5]["traffic_overhead_pct"] >= by[0.0]["traffic_overhead_pct"]

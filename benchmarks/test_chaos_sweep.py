"""Chaos sweep — SWIM failure detection vs the plain heartbeat timeout.

Not a paper figure: the paper's liveness rule is timeout-equals-death,
which under composed faults (crash burst + i.i.d. loss + persistently
lossy links + slow links + bounded inboxes) evicts live nodes whose
links merely look bad.  This sweep runs the identical chaos timeline
under both liveness sources and asserts the PR's acceptance gate: the
SWIM detector (probe, indirect probe, suspicion, incarnation-refutation)
achieves a strictly lower false-positive eviction rate than the
heartbeat baseline at equal-or-better detection latency, under >= 5%
loss, without giving up delivery — while half the crashed nodes rejoin
gracefully mid-run.
"""

from benchmarks.conftest import emit
from repro.experiments import scaled
from repro.experiments.scenarios import chaos_sweep

LOSS_RATES = (0.05, 0.1)


def test_chaos_sweep(once):
    rows = once(
        chaos_sweep,
        n_nodes=scaled(200),
        n_topics=400,
        loss_rates=LOSS_RATES,
        kill_frac=0.15,
        rejoin_frac=0.5,
        chaos_cycles=20,
        recover_cycles=12,
        events=120,
        seed=0,
    )
    emit("Chaos sweep — SWIM vs heartbeat under composed faults", rows)

    cell = {(r["detector"], r["loss_rate"]): r for r in rows}
    for rate in LOSS_RATES:
        sw, hb = cell[("swim", rate)], cell[("heartbeat", rate)]

        # The acceptance gate: fewer false evictions, no slower detection.
        # Per-victim forget times are whole cycles and both mechanisms
        # carry +-1 cycle of probe/heartbeat phase jitter, so "equal"
        # latency is asserted at one-cycle granularity per rate (the
        # strict comparison is made on the sweep aggregate below).
        assert sw["false_eviction_rate"] < hb["false_eviction_rate"]
        assert sw["false_evictions"] < hb["false_evictions"]
        assert sw["detection_latency"] <= hb["detection_latency"] + 1.0
        assert sw["undetected"] <= hb["undetected"]

        # Accuracy is not bought with delivery: SWIM's hit ratio holds up
        # (small estimator tolerance on a 120-event sample).
        assert sw["hit_ratio"] >= hb["hit_ratio"] - 0.02

        # The machinery actually ran, and every returning crash victim
        # re-entered through the graceful rejoin path.
        assert sw["probes_sent"] > 0 and sw["suspicions"] > 0
        assert sw["confirmations"] >= 1
        assert sw["rejoined"] > 0
        assert sw["detector_rejoins"] == sw["rejoined"]
        assert hb["probes_sent"] == 0  # baseline: no detector constructed

    # Aggregated over the sweep, SWIM detects strictly faster.
    assert sum(cell[("swim", r)]["detection_latency"] for r in LOSS_RATES) \
        < sum(cell[("heartbeat", r)]["detection_latency"] for r in LOSS_RATES)

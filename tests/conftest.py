"""Shared fixtures.

Protocol builds are the expensive part of this suite, so converged systems
are session-scoped; tests must not mutate them (tests that need to mutate
build their own small instances).
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.workloads.subscriptions import bucket_subscriptions


SMALL_N = 80
SMALL_TOPICS = 100


def small_subscriptions(seed: int = 1):
    """80 nodes, 100 topics in 10 buckets, 2 buckets x 5 topics per node —
    a miniature high-correlation workload."""
    return bucket_subscriptions(
        SMALL_N,
        SMALL_TOPICS,
        n_buckets=10,
        buckets_per_node=2,
        topics_per_bucket=5,
        seed=seed,
    )


@pytest.fixture(scope="session")
def small_subs():
    return small_subscriptions()


@pytest.fixture(scope="session")
def converged_vitis(small_subs):
    """A small converged Vitis system with relays installed.  Read-only."""
    p = VitisProtocol(
        small_subs,
        VitisConfig(rt_size=10, n_sw_links=1),
        seed=42,
        election_every=0,
        relay_every=0,
    )
    p.run_cycles(50)
    p.finalize()
    return p


@pytest.fixture()
def rng():
    return random.Random(12345)

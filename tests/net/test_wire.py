"""repro.net.wire: versioned codec round-trips and rejection paths."""

import json

import pytest

from repro.core.gateway import Proposal
from repro.net import wire
from repro.sim import messages as M
from repro.sim.messages import payload_fields


def _roundtrip(msg):
    decoded, envelope = wire.decode(wire.encode(msg, seq=7))
    assert envelope["n"] == 7
    assert envelope["v"] == wire.WIRE_VERSION
    return decoded


def test_roundtrip_simple_kinds():
    for msg in (
        M.Notification(src=1, dst=2, topic=9, event_id=4, hops=3, publisher=1),
        M.PullRequest(src=1, dst=2, event_id=4),
        M.LookupMessage(src=1, dst=2, target_id=55, origin=1, hops=2),
        M.RelayInstall(src=1, dst=2, topic=3, target_id=4, origin=5, hops=6),
        M.Probe(src=1, dst=2, target=2, incarnation=3),
        M.ProbeReq(src=1, dst=2, target=5, origin=1),
        M.ProbeAck(src=2, dst=1, target=2, incarnation=3),
        M.Suspicion(src=1, dst=2, target=5, incarnation=0),
        M.Refutation(src=5, dst=1, target=5, incarnation=1),
    ):
        assert _roundtrip(msg) == msg


def test_roundtrip_descriptor_views():
    msg = M.PsExchangeRequest(src=3, dst=4, view=[(1, 100, 0), (2, 200, 5)])
    assert _roundtrip(msg) == msg
    msg = M.RtExchangeReply(src=3, dst=4, buffer=[(9, 900, 1)])
    assert _roundtrip(msg) == msg


def test_roundtrip_profile_with_proposals():
    profile = (
        frozenset({3, 1, 2}),
        4,
        {7: Proposal(1, 100, 2, 3), 9: Proposal(5, 500, 6, 1)},
        False,
    )
    out = _roundtrip(M.ProfileMessage(src=1, dst=2, profile=profile))
    assert out.profile == profile
    assert isinstance(out.profile[0], frozenset)
    assert isinstance(out.profile[2][7], Proposal)


def test_span_metadata_rides_the_envelope():
    msg = M.Notification(src=1, dst=2, topic=3, event_id=4)
    msg.span = ("e5", "n1x0", "flood")
    decoded, _ = wire.decode(wire.encode(msg, seq=1))
    assert decoded.span == ("e5", "n1x0", "flood")


def test_encoding_is_deterministic():
    msg = M.ProfileMessage(
        src=1, dst=2,
        profile=(frozenset({5, 3}), 1, {2: Proposal(1, 2, 3, 4)}, True),
    )
    assert wire.encode(msg, 3) == wire.encode(msg, 3)


def test_wrong_version_and_garbage_rejected():
    with pytest.raises(wire.WireError):
        wire.decode(b"\xff\x00 not json")
    with pytest.raises(wire.WireError):
        wire.decode(json.dumps({"v": 999, "k": "Probe"}).encode())
    with pytest.raises(wire.WireError):
        wire.decode(json.dumps(
            {"v": wire.WIRE_VERSION, "k": "NoSuchKind", "n": 1, "s": 0, "d": 1,
             "p": {}}).encode())


def test_ack_roundtrip():
    msg, envelope = wire.decode(wire.encode_ack(42, src=3, dst=9))
    assert msg is None
    assert envelope["k"] == wire.ACK_KIND
    assert envelope["n"] == 42 and envelope["s"] == 3 and envelope["d"] == 9


def test_payload_fields_excludes_framing():
    assert payload_fields(M.Notification) == ("topic", "event_id", "hops", "publisher")
    assert payload_fields(M.Probe) == ("target", "incarnation")
    for cls in wire.MESSAGE_KINDS.values():
        assert not set(payload_fields(cls)) & {"src", "dst", "size"}


def test_encoded_size_tracks_size_bytes_audit():
    # The codec enumerates exactly the fields size_bytes audits, so the
    # real datagram should stay within a small constant factor of the
    # audited estimate for representative kinds.
    msgs = [
        M.Notification(src=1, dst=2, topic=3, event_id=4, hops=1, publisher=1),
        M.RtExchangeRequest(src=1, dst=2, buffer=[(i, i * 7, 0) for i in range(15)]),
        M.RelayInstall(src=1, dst=2, topic=3, target_id=4, origin=5, hops=6),
    ]
    for msg in msgs:
        actual = len(wire.encode(msg, 1))
        audited = msg.size_bytes
        assert audited / 4 <= actual <= audited * 4

"""repro.net.cluster: miss attribution and the live mini-cluster end to end."""

import asyncio
import json

from repro.net.cli import build_parser
from repro.net.cluster import _EventPlan, _attribute_misses, run_cluster
from repro.obs.spans import CAUSE_DEAD_NODE, CAUSE_FAULTED_LINK, CAUSE_NO_PATH


def _plan(trace="e0", pub=0, expected=(1, 2, 3), sent=True):
    return _EventPlan(event=0, topic=5, publisher=pub, trace=trace,
                      expected=set(expected), sent=sent)


def test_attribution_is_total_and_prefers_concrete_causes():
    plans = [_plan()]
    delivered = {"e0": {1}}
    failure_edges = {"e0": {3: 7}}  # node 7 exhausted retries toward 3
    misses = _attribute_misses(plans, delivered, failure_edges, dead_procs={2})
    by_addr = {m["addr"]: m for m in misses}
    assert set(by_addr) == {2, 3}
    assert by_addr[2]["cause"] == CAUSE_DEAD_NODE
    assert by_addr[3]["cause"] == CAUSE_FAULTED_LINK
    assert by_addr[3]["src"] == 7 and by_addr[3]["dst"] == 3


def test_attribution_dead_publisher_and_no_path_fallback():
    # Publisher never got the command: the whole expected set is dead_node.
    dead_pub = _plan(trace="e1", pub=9, sent=False)
    # No failure span, no dead process: the realized graph had no route.
    silent = _plan(trace="e2")
    misses = _attribute_misses(
        [dead_pub, silent], delivered={"e2": {1, 2}},
        failure_edges={}, dead_procs=set(),
    )
    e1 = [m for m in misses if m["trace"] == "e1"]
    e2 = [m for m in misses if m["trace"] == "e2"]
    assert len(e1) == 3 and all(m["cause"] == CAUSE_DEAD_NODE for m in e1)
    assert all(m["dst"] == 9 for m in e1)
    assert [m["addr"] for m in e2] == [3]
    assert e2[0]["cause"] == CAUSE_NO_PATH
    # Fully delivered events contribute nothing.
    assert all(m["trace"] in ("e1", "e2") for m in misses)


def test_mini_cluster_end_to_end(tmp_path):
    """6 loopback processes under 5% UDP loss: converge, measure, audit.

    This is the full live path — seed bootstrap, UDP gossip, SWIM,
    fig4-style measurement, collector merge, total miss attribution —
    and the same gates the CI live-smoke job enforces, at pytest scale.
    """
    trace_out = tmp_path / "mini_trace.jsonl"
    series_out = tmp_path / "mini_series.json"
    ns = build_parser().parse_args([
        "cluster", "--procs", "6", "--events", "8",
        "--loss-rate", "0.05", "--gossip-period", "0.2",
        "--converge-timeout", "60", "--settle", "2.5",
        "--trace-out", str(trace_out),
        "--metrics-interval", "0.5", "--series-out", str(series_out),
    ])
    ns.n_nodes = ns.procs
    result = asyncio.run(run_cluster(ns))
    assert result.failures == []
    assert result.joined and result.converged and result.clean_shutdown
    assert result.audit is not None and result.audit.ok
    assert result.audit.unexplained_total == 0
    assert result.sim_hit is not None
    assert result.live_hit >= max(0.0, result.sim_hit - ns.hit_band)
    # The merged trace is a valid proc-tagged JSONL feed for trace-report.
    records = [json.loads(line) for line in trace_out.read_text().splitlines()]
    assert any(r.get("ev") == "span" and r.get("kind") == "publish"
               for r in records)
    assert all("proc" in r for r in records if r.get("ev") == "span")
    # Streaming was on: every node's frames reached the store, yet the
    # merged trace stays frame-free (snapshot streaming is trace-inert).
    assert result.metrics_endpoint is not None
    assert result.metrics_frames >= ns.procs
    assert not any(r.get("ev") == "metrics_delta" for r in records)
    from repro.net.store import MetricsStore

    store = MetricsStore.from_doc(json.loads(series_out.read_text()))
    assert len(store.nodes) == ns.procs
    # Cumulative totals rebuilt from deltas are live traffic, not zeros.
    sent = sum(reg.counter("live_sent_total").value
               for reg in store.registries().values())
    assert sent > 0
    # Every SWIM transition in the merged trace is in the series too —
    # the post-run timeline and the live view agree record for record.
    traced = [(r["proc"], r["peer"], r["prev"], r["state"])
              for r in records if r.get("ev") == "swim"]
    stored = [(proc, peer, prev, state)
              for _t, proc, peer, prev, state in store.swim_events]
    assert sorted(traced) == sorted(stored)
    # The persisted series renders as a live-report health timeline.
    from repro.obs.report import live_report

    text = live_report(json.loads(series_out.read_text()))
    assert "per-node streams" in text
    assert "ring convergence" in text

"""repro.net.timers: the extracted phase-jitter draw and async timer."""

import asyncio
import random

from repro.core.deployment import DeployedVitis
from repro.net.timers import AsyncPeriodicTask, jittered_period, start_periodic
from repro.sim.engine import Engine
from repro.workloads import bucket_subscriptions


def test_jittered_period_matches_historical_inline_formula():
    # The draw DeployedVitisNode.deploy used inline before the extraction.
    # Byte-identity of deployed-mode runs depends on this staying exact.
    for seed in range(20):
        a, b = random.Random(seed), random.Random(seed)
        expected = 1.25 * (1.0 + 0.2 * (a.random() - 0.5))
        assert jittered_period(1.25, b) == expected
        assert a.getstate() == b.getstate()  # exactly one draw consumed


def test_jittered_period_band():
    rng = random.Random(7)
    draws = [jittered_period(2.0, rng) for _ in range(200)]
    assert all(1.8 <= d <= 2.2 for d in draws)
    assert min(draws) < 1.85 and max(draws) > 2.15


def test_start_periodic_ticks_on_engine_clock():
    engine = Engine()
    rng = random.Random(3)
    fired = []
    task = start_periodic(engine, 1.0, rng, lambda: fired.append(engine.now))
    engine.run(until=5.0)
    assert len(fired) >= 4
    period = fired[0]
    assert all(abs((b - a) - period) < 1e-9 for a, b in zip(fired, fired[1:]))
    task.stop()


def test_deployed_mode_unchanged_by_extraction():
    # Golden invariant for the refactor: a deployed run with a fixed seed
    # still produces the same message counts (the timer draw order and
    # periods are part of the trajectory).
    subs = bucket_subscriptions(
        30, 50, n_buckets=5, buckets_per_node=2, topics_per_bucket=3, seed=1
    )
    counts = []
    for _ in range(2):
        d = DeployedVitis(subs, seed=1)
        d.run(10)
        counts.append(sorted(d.network.sent.items()))
    assert counts[0] == counts[1]


def test_async_periodic_task_ticks_and_stops():
    async def run():
        loop = asyncio.get_running_loop()
        fired = []
        task = AsyncPeriodicTask(0.01, lambda: fired.append(1), loop=loop)
        await asyncio.sleep(0.06)
        task.stop()
        seen = len(fired)
        assert seen >= 3
        await asyncio.sleep(0.03)
        assert len(fired) == seen  # no ticks after stop
    asyncio.run(run())


def test_async_periodic_task_callback_false_stops():
    async def run():
        fired = []

        def cb():
            fired.append(1)
            return False

        task = AsyncPeriodicTask(0.01, cb)
        await asyncio.sleep(0.05)
        assert len(fired) == 1
        assert task._stopped
    asyncio.run(run())

"""Collector stream handling: truncation tolerance, metrics-frame
ingestion, and trace/store separation."""

import asyncio
import json
import logging

from repro.net.collector import Collector
from repro.net.wire import encode_metrics_frame


def run_session(payloads, store=None):
    """Start a collector, send each ``payloads`` bytes blob on its own
    connection, close abruptly (no clean EOF record), return collector."""
    async def go():
        collector = await Collector.start(store=store)
        host, port = collector.local_addr
        for blob in payloads:
            _, writer = await asyncio.open_connection(host, port)
            writer.write(blob)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        await collector.wait_quiescent(idle=0.2, timeout=10.0)
        await collector.close()
        return collector
    return asyncio.run(go())


def record_line(**kw):
    return (json.dumps(kw) + "\n").encode()


def metrics_line(proc=7001, seq=0, sent=1.0):
    frame = encode_metrics_frame(
        proc, seq, 0.5, 100.0 + seq,
        {"counters": [["live_sent_total", [], sent]]},
    )
    return (json.dumps(frame) + "\n").encode()


class TestTruncation:
    def test_killed_mid_frame_keeps_complete_records(self, caplog):
        good = record_line(ev="span", proc=3, kind="publish")
        # The sender died mid-write: invalid JSON, no trailing newline.
        torn = b'{"ev": "span", "proc": 3, "kind": "flo'
        with caplog.at_level(logging.WARNING, logger="repro.net.collector"):
            collector = run_session([good + good + torn])
        assert len(collector.records) == 2
        assert collector.malformed == 1
        assert len(collector.truncated) == 1
        peer, offset = collector.truncated[0]
        assert offset == 2 * len(good)
        msg = "\n".join(r.getMessage() for r in caplog.records)
        assert "truncated trailing frame" in msg
        assert "node 3" in msg          # the sender's overlay address
        assert f"byte offset {offset}" in msg

    def test_complete_record_missing_final_newline_is_kept(self):
        good = record_line(ev="span", proc=4, kind="publish")
        tail = json.dumps({"ev": "span", "proc": 4, "kind": "deliver"}).encode()
        collector = run_session([good + tail])
        assert len(collector.records) == 2
        assert collector.malformed == 0
        assert collector.truncated == []

    def test_record_larger_than_64k_survives_chunked_reads(self):
        big = record_line(ev="span", proc=5, kind="publish",
                          pad="x" * 200_000)
        collector = run_session([big])
        assert len(collector.records) == 1
        assert collector.records[0]["pad"] == "x" * 200_000


class TestMetricsFrames:
    def test_frames_feed_store_but_never_records(self):
        blob = (metrics_line(seq=0, sent=5.0) +
                metrics_line(seq=1, sent=3.0) +
                record_line(ev="span", proc=7001, kind="publish"))
        collector = run_session([blob])
        # Trace inertness: the merged trace is frame-free.
        assert [r["ev"] for r in collector.records] == ["span"]
        totals = collector.store.registries()[7001]
        assert totals.counter("live_sent_total").value == 8.0
        assert collector.store.nodes[7001].frames == 2

    def test_bad_frame_version_counted_and_dropped(self):
        frame = encode_metrics_frame(1, 0, 0.0, 100.0, {"counters": []})
        frame["mv"] = 999
        collector = run_session([
            (json.dumps(frame) + "\n").encode() + metrics_line(proc=1, seq=1)
        ])
        assert collector.store.dropped_frames == 1
        assert collector.store.nodes[1].frames == 1
        assert collector.records == []

    def test_snapshot_records_still_captured(self):
        blob = record_line(ev="metrics_snapshot", proc=9,
                           snapshot={"metrics": {"counters": []}})
        collector = run_session([blob])
        assert 9 in collector.snapshots
        assert collector.records == []


class TestSwimTee:
    def test_swim_events_land_in_trace_and_store(self):
        blob = record_line(ev="swim", proc=1, t=0.4, ts=100.4,
                           peer=2, prev="alive", state="suspect")
        collector = run_session([blob])
        # In the merged trace (for the post-run timeline)...
        assert [r["ev"] for r in collector.records] == ["swim"]
        # ...and in the live store's timeline.
        (t, proc, peer, prev, state), = collector.store.swim_events
        assert (proc, peer, prev, state) == (1, 2, "alive", "suspect")

    def test_malformed_swim_record_still_traced(self):
        blob = record_line(ev="swim", proc=1)  # no peer/prev/state
        collector = run_session([blob])
        assert len(collector.records) == 1
        assert len(collector.store.swim_events) == 0

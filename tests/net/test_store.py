"""The collector's rolling per-node metrics time-series store."""

import json

import pytest

from repro.net.store import STORE_SCHEMA, MetricsStore


def frame(sent=5.0, queue=2.0, delivered=0.0, suspects=0.0, dead=0.0):
    return {
        "counters": [
            ["live_sent_total", [], sent],
            ["live_delivered_events", [], delivered],
        ],
        "gauges": [
            ["live_queue_depth", [], queue],
            ["swim_suspect_peers", [], suspects],
            ["swim_dead_peers", [], dead],
        ],
        "histograms": [
            ["live_delivery_hops", [], {
                "buckets": [1, 2, 4], "bucket_counts": [1, 1, 0],
                "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
            }],
        ],
    }


class TestIngest:
    def test_deltas_fold_into_cumulative_totals(self):
        store = MetricsStore()
        assert store.ingest(7001, 0, 0.5, 100.0, frame(sent=5))
        assert store.ingest(7001, 1, 1.5, 101.0, frame(sent=3))
        totals = store.registries()[7001]
        assert totals.counter("live_sent_total").value == 8.0
        assert store.nodes[7001].frames == 2

    def test_stale_or_duplicate_seq_dropped(self):
        store = MetricsStore()
        assert store.ingest(7001, 3, 0.5, 100.0, frame(sent=5))
        assert not store.ingest(7001, 3, 0.6, 100.1, frame(sent=99))
        assert not store.ingest(7001, 1, 0.7, 100.2, frame(sent=99))
        assert store.registries()[7001].counter("live_sent_total").value == 5.0
        assert store.dropped_frames == 2

    def test_samples_aligned_to_first_epoch_ts(self):
        store = MetricsStore()
        # Two nodes whose monotonic clocks (t) started at wildly
        # different instants: alignment must come from epoch ts.
        store.ingest(1, 0, 5000.0, 100.0, frame())
        store.ingest(2, 0, 17.0, 101.5, frame())
        assert store.nodes[1].samples[0]["t"] == 0.0
        assert store.nodes[2].samples[0]["t"] == 1.5

    def test_sample_window_is_bounded(self):
        store = MetricsStore(max_samples=4)
        for i in range(10):
            store.ingest(1, i, float(i), 100.0 + i, frame(sent=1))
        assert len(store.nodes[1].samples) == 4
        # Totals still reflect every frame, not just the window.
        assert store.registries()[1].counter("live_sent_total").value == 10.0

    def test_rate_from_rolling_window(self):
        store = MetricsStore()
        store.ingest(1, 0, 0.0, 100.0, frame(sent=5))
        assert store.nodes[1].rate("live_sent_total") is None
        store.ingest(1, 1, 2.0, 102.0, frame(sent=6))
        assert store.nodes[1].rate("live_sent_total") == pytest.approx(3.0)


class TestStatusDoc:
    def test_rows_and_cluster_rollup(self):
        store = MetricsStore()
        store.ingest(1, 0, 0.0, 100.0, frame(sent=5, delivered=4, queue=7))
        store.ingest(2, 0, 0.0, 100.5, frame(sent=2, delivered=3, suspects=1))
        store.note_expected(100.6, 10)
        store.note_ring(100.7, 0, 2)
        store.note_swim(1, 100.8, 2, "alive", "suspect")
        doc = store.status_doc(now_ts=101.0)
        rows = {r["proc"]: r for r in doc["nodes"]}
        assert rows[1]["queue"] == 7.0
        assert rows[1]["verdict"] == "alive"
        assert rows[2]["verdict"] == "suspecting"
        assert rows[1]["age_s"] == pytest.approx(1.0)
        cluster = doc["cluster"]
        assert cluster["reporting"] == 2
        assert cluster["delivered"] == 7.0
        assert cluster["expected_deliveries"] == 10
        assert cluster["hit_ratio"] == pytest.approx(0.7)
        assert cluster["ring_wrong"] == 0
        assert cluster["swim_transitions"] == 1

    def test_empty_store_has_no_hit_ratio(self):
        doc = MetricsStore().status_doc(now_ts=0.0)
        assert doc["nodes"] == []
        assert doc["cluster"]["hit_ratio"] is None


class TestPersistence:
    def test_doc_round_trip_is_json_safe(self):
        store = MetricsStore()
        store.ingest(1, 0, 0.0, 100.0, frame(sent=5))
        store.ingest(1, 1, 1.0, 101.0, frame(sent=1))
        store.note_swim(1, 101.2, 2, "alive", "suspect")
        store.note_ring(101.3, 1, 2)
        store.note_expected(101.4, 6)
        doc = json.loads(json.dumps(store.to_doc()))
        assert doc["schema"] == STORE_SCHEMA
        rt = MetricsStore.from_doc(doc)
        assert rt.registries()[1].counter("live_sent_total").value == 6.0
        assert rt.nodes[1].frames == 2
        (t, proc, peer, prev, state), = rt.swim_events
        assert (t, proc, peer, prev, state) == (
            pytest.approx(1.2), 1, 2, "alive", "suspect")
        (t, wrong, total), = rt.ring_samples
        assert (t, wrong, total) == (pytest.approx(1.3), 1, 2)
        (t, cum), = rt.expected_samples
        assert (t, cum) == (pytest.approx(1.4), 6)

    def test_from_doc_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            MetricsStore.from_doc({"schema": "something/else"})
        with pytest.raises(ValueError):
            MetricsStore.from_doc([])


class TestStatusConsole:
    def test_render_status_formats_rows_and_rollup(self):
        from repro.net.status import render_status

        store = MetricsStore()
        store.ingest(7001, 0, 0.0, 100.0, frame(sent=5, delivered=2))
        store.note_expected(100.5, 4)
        text = render_status(store.status_doc(now_ts=101.0))
        assert "live nodes" in text
        assert "7001" in text
        assert "hit so far 0.500" in text

    def test_render_status_before_any_frames(self):
        from repro.net.status import render_status

        text = render_status(MetricsStore().status_doc(now_ts=0.0))
        assert "no metrics frames received yet" in text

"""repro.net.transport: loopback UDP pairs, loss, retry, dedup, give-up."""

import asyncio
import random

import pytest

from repro.faults.healing import RetryPolicy
from repro.net.transport import UdpTransport
from repro.sim import messages as M


async def _pair(loss_a=0.0, loss_b=0.0, retry=None):
    a = await UdpTransport.create(0, random.Random(1), retry=retry, loss_rate=loss_a)
    b = await UdpTransport.create(1, random.Random(2), retry=retry, loss_rate=loss_b)
    a.endpoints[1] = b.local_addr
    b.endpoints[0] = a.local_addr
    return a, b


def test_reliable_delivery_over_perfect_wire():
    async def run():
        a, b = await _pair()
        got = []
        b.on_message = got.append
        for i in range(20):
            assert a.send(M.Notification(src=0, dst=1, topic=i, event_id=i))
        assert await a.drain(2.0)
        assert sorted(m.topic for m in got) == list(range(20))
        assert b.duplicates == 0
        a.close(); b.close()
    asyncio.run(run())


def test_reliable_delivery_under_sustained_loss():
    async def run():
        # 20% loss on both directions; the retry budget still gets every
        # message through, with no duplicate deliveries to the app.
        retry = RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.1)
        a, b = await _pair(loss_a=0.2, loss_b=0.2, retry=retry)
        got = []
        b.on_message = got.append
        for i in range(30):
            a.send(M.RelayInstall(src=0, dst=1, topic=i, target_id=i, origin=0, hops=1))
        assert await a.drain(10.0)
        assert sorted(m.topic for m in got) == list(range(30))
        assert a.retransmits > 0
        assert b.loss_injected > 0
        a.close(); b.close()
    asyncio.run(run())


def test_retry_budget_exhaustion_reports_give_up():
    async def run():
        retry = RetryPolicy(max_attempts=3, base_delay=0.02, max_delay=0.05)
        a = await UdpTransport.create(0, random.Random(1), retry=retry)
        # Endpoint points at a port nobody listens on: every attempt dies.
        a.endpoints[1] = ("127.0.0.1", 1)  # privileged port, nothing there
        gave_up = []
        a.on_give_up = gave_up.append
        msg = M.ProfileMessage(src=0, dst=1, profile=(frozenset(), 0, {}, False))
        a.send(msg)
        await asyncio.sleep(0.5)
        assert a.gave_up == 1
        assert gave_up == [msg]
        assert a.pending_count == 0  # degraded, not blocked
        a.close()
    asyncio.run(run())


def test_unknown_destination_drops_immediately():
    async def run():
        a = await UdpTransport.create(0, random.Random(1))
        assert not a.send(M.Probe(src=0, dst=99, target=99))
        assert a.dropped["Probe"] == 1
        a.close()
    asyncio.run(run())


def test_swim_kinds_ride_unreliable():
    async def run():
        a, b = await _pair()
        got = []
        b.on_message = got.append
        a.send(M.Probe(src=0, dst=1, target=1, incarnation=0))
        await asyncio.sleep(0.1)
        assert [m.kind for m in got] == ["Probe"]
        assert a.pending_count == 0  # no ack awaited, no retransmit state
        a.close(); b.close()
    asyncio.run(run())


def test_malformed_datagrams_are_counted_not_fatal():
    async def run():
        a, b = await _pair()
        got = []
        b.on_message = got.append
        a._sock.sendto(b"garbage{{{", b.local_addr)
        a.send(M.PullRequest(src=0, dst=1, event_id=5))
        assert await a.drain(2.0)
        assert b.malformed == 1
        assert [m.kind for m in got] == ["PullRequest"]
        a.close(); b.close()
    asyncio.run(run())


def test_counters_mirror_network_shape():
    async def run():
        a, b = await _pair()
        b.on_message = lambda m: None
        a.send(M.Notification(src=0, dst=1, topic=1, event_id=1))
        await a.drain(2.0)
        assert a.sent["Notification"] == 1
        assert b.delivered["Notification"] == 1
        assert a.sent_by_addr[0] == 1
        assert b.delivered_by_addr[1] == 1
        assert a.bytes_sent > 0
        a.close(); b.close()
    asyncio.run(run())

"""repro.net.bootstrap + collector: registry handshake and stream merge."""

import asyncio
import socket

from repro.net.bootstrap import SeedClient, SeedService
from repro.net.collector import Collector
from repro.obs import Telemetry
from repro.obs.trace import TraceWriter


def test_join_assigns_addresses_and_pushes_registry():
    async def run():
        seed = await SeedService.start()
        host, port = seed.local_addr
        a = await SeedClient.connect(host, port, "127.0.0.1", 5001)
        b = await SeedClient.connect(host, port, "127.0.0.1", 5002)
        assert (a.address, b.address) == (0, 1)
        await seed.wait_for(2, timeout=5)
        assert seed.endpoints == {0: ("127.0.0.1", 5001), 1: ("127.0.0.1", 5002)}
        # The earlier joiner hears about the later one via a push.
        for _ in range(100):
            if 1 in a.peers:
                break
            await asyncio.sleep(0.02)
        assert a.peers[1] == ("127.0.0.1", 5002)
        await a.close(); await b.close(); await seed.close()
    asyncio.run(run())


def test_disconnect_removes_member_and_rebroadcasts():
    async def run():
        seed = await SeedService.start()
        host, port = seed.local_addr
        a = await SeedClient.connect(host, port, "127.0.0.1", 5001)
        b = await SeedClient.connect(host, port, "127.0.0.1", 5002)
        await seed.wait_for(2, timeout=5)
        await b.close()
        for _ in range(100):
            if 1 not in a.peers:
                break
            await asyncio.sleep(0.02)
        assert 1 not in a.peers
        assert 1 not in seed.endpoints
        await a.close(); await seed.close()
    asyncio.run(run())


def test_dead_reports_and_driver_commands():
    async def run():
        seed = await SeedService.start()
        inbox = []
        seed.on_node_message = lambda addr, obj: inbox.append((addr, obj))
        host, port = seed.local_addr
        a = await SeedClient.connect(host, port, "127.0.0.1", 5001)
        pushes = []
        a.on_push = pushes.append
        a.report_dead(7)
        a.send({"op": "topo_report", "links": [1, 2]})
        assert seed.send_to(0, {"op": "publish", "topic": 3})
        for _ in range(100):
            if inbox and pushes and seed.reported_dead:
                break
            await asyncio.sleep(0.02)
        assert seed.reported_dead == {7: [0]}
        assert inbox == [(0, {"op": "topo_report", "links": [1, 2]})]
        assert pushes == [{"op": "publish", "topic": 3}]
        await a.close(); await seed.close()
    asyncio.run(run())


def test_collector_merges_streams_and_snapshots():
    async def run():
        col = await Collector.start()
        host, port = col.local_addr

        def stream(proc, n_events):
            # What a node process does: a proc-tagged TraceWriter over the
            # collector socket, then a metrics_snapshot record.
            sock = socket.create_connection((host, port))
            fh = sock.makefile("w", encoding="utf-8")
            tw = TraceWriter(fh, flush_every=1, base={"proc": proc})
            for i in range(n_events):
                tw.emit("span", t=float(i), trace=f"e{i}",
                        span=f"n{proc}x{i}", kind="publish", src=proc,
                        dst=proc, hop=0)
            tel = Telemetry()
            tel.metrics.counter("events_total").inc(n_events)
            tw.write_record({"ev": "metrics_snapshot", "proc": proc,
                             "snapshot": tel.snapshot()})
            tw.close()
            sock.close()

        await asyncio.gather(*(asyncio.to_thread(stream, p, 3) for p in (0, 1, 2)))
        assert await col.wait_quiescent(idle=0.3, timeout=10)
        assert sorted(col.records_by_proc.items()) == [(0, 3), (1, 3), (2, 3)]
        assert len(col.records) == 9
        assert all("proc" in r for r in col.records)

        parent = Telemetry()
        col.merge_into(parent)
        assert parent.metrics.to_dict()["counters"]["events_total"] == 9
        await col.close()
    asyncio.run(run())

"""SWIM refutation under sustained 10% message loss.

The property, in both hosting environments: a node that is *alive but
looks flaky* (lost probes, lost acks) gets suspected — and the
refutation path clears every suspicion before its grace deadline, so a
live node is never confirmed dead by loss alone.

- in-sim: :class:`repro.faults.detector.SwimDetector` against the
  ``MessageLoss`` fault model inside the cycle simulator;
- live: :class:`repro.net.liveness.LiveSwimDetector` instances probing
  each other over real loopback UDP datagrams with receiver-side loss
  injection — every protocol leg (probe, probe-req, ack, suspicion,
  refutation) an actual unreliable datagram.
"""

import asyncio
import random

from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.faults import DetectorConfig, HealingPolicy, MessageLoss, SwimDetector
from repro.faults.detector import STATE_DEAD
from repro.net.liveness import LiveSwimDetector
from repro.net.transport import UdpTransport
from tests.conftest import small_subscriptions


def test_in_sim_refutation_survives_sustained_ten_percent_loss():
    p = VitisProtocol(
        small_subscriptions(seed=5),
        VitisConfig(rt_size=10, n_sw_links=1),
        seed=5, election_every=0, relay_every=0,
    )
    p.run_cycles(40)
    p.finalize()
    det = SwimDetector(random.Random(6), DetectorConfig())
    p.attach_detector(det)
    p.attach_faults(MessageLoss(0.1, random.Random(106)), HealingPolicy())
    p.run_cycles(40)

    # Loss produced real probe misses and real suspicions...
    assert det.probe_misses > 0
    assert det.suspicions >= 1
    # ...and refutation (not expiry) resolved them: nobody died.
    assert det.refutations >= 1
    assert det.confirmations == 0
    assert p.false_evictions == 0
    for a in p.live_addresses():
        assert det.state_of(a) != STATE_DEAD


def test_live_refutation_over_lossy_loopback_udp():
    async def run():
        period = 0.05
        rng = random.Random(0)
        # 10% receiver-side loss on both ends; all SWIM kinds ride the
        # transport's unreliable class, so every leg can genuinely drop.
        ta = await UdpTransport.create(0, random.Random(1), loss_rate=0.1)
        tb = await UdpTransport.create(1, random.Random(2), loss_rate=0.1)
        ta.endpoints[1] = tb.local_addr
        tb.endpoints[0] = ta.local_addr
        clock = asyncio.get_running_loop().time
        da = LiveSwimDetector(0, ta, rng, clock=clock, period=period,
                              candidates=lambda: [1], config=DetectorConfig())
        db = LiveSwimDetector(1, tb, rng, clock=clock, period=period,
                              candidates=lambda: [0], config=DetectorConfig())
        ta.on_message = da.on_message
        tb.on_message = db.on_message
        try:
            # Sustain suspicion pressure: plant B's obituary at A for a
            # few rounds (as consecutive missed probe rounds would),
            # while both detectors keep ticking over the lossy wire.
            for i in range(40):
                if i < 6:
                    da._suspect(1, clock())
                da.tick()
                db.tick()
                await asyncio.sleep(period)
            # B heard its obituary, outbid it, and the refutation (or a
            # delivered probe-ack) cleared A's suspicion before expiry.
            assert da.suspicions >= 1
            assert not da.suspected(1) and not da.confirmed(1)
            assert da.confirmations == 0
            assert db.incarnation >= 1  # B bumped to outbid the obituary
        finally:
            ta.close()
            tb.close()
    asyncio.run(run())


def test_on_transition_fires_once_per_verdict_change():
    """The observability hook reports each state *change* exactly once —
    re-suspicions, repeated acks and refutations stay silent."""
    class StubTransport:
        def __init__(self):
            self.sent = []

        def send(self, msg):
            self.sent.append(msg)

    from repro.sim.messages import ProbeAck, Refutation

    clock = [0.0]
    transitions = []
    det = LiveSwimDetector(
        0, StubTransport(), random.Random(3), clock=lambda: clock[0],
        period=1.0, candidates=lambda: [1, 2], config=DetectorConfig(),
        on_transition=lambda peer, prev, new: transitions.append(
            (peer, prev, new)),
    )

    det._suspect(1, clock[0])
    det._suspect(1, clock[0])  # re-suspicion: no new transition
    assert transitions == [(1, "alive", "suspect")]

    # A delivered ack clears the suspicion (suspect -> alive), once.
    det.on_message(ProbeAck(src=1, dst=0, target=1, incarnation=0))
    det.on_message(ProbeAck(src=1, dst=0, target=1, incarnation=0))
    assert transitions == [(1, "alive", "suspect"), (1, "suspect", "alive")]

    # Suspect again, let the grace deadline blow: suspect -> dead.
    det._suspect(1, clock[0])
    clock[0] = 1000.0
    det._confirm_round(clock[0])
    assert transitions[-1] == (1, "suspect", "dead")
    assert det.verdict_counts() == {"suspect": 0, "dead": 1}

    # Ground-truth datagram from the "dead" peer resurrects it.
    det.note_heard(1)
    assert transitions[-1] == (1, "dead", "alive")
    assert det.verdict_counts() == {"suspect": 0, "dead": 0}

    # Refutation path: suspect 2, then its newer incarnation clears it.
    det._suspect(2, clock[0])
    det.on_message(Refutation(src=2, dst=0, target=2, incarnation=5))
    assert transitions[-2:] == [(2, "alive", "suspect"),
                                (2, "suspect", "alive")]

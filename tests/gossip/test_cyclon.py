"""Tests for the Cyclon shuffle variant."""

import random

from repro.gossip.cyclon import CyclonService
from repro.gossip.view import Descriptor
from repro.sim.rng import SeedTree


def build_population(n, view_size=8, seed=1):
    tree = SeedTree(seed)
    services = {
        a: CyclonService(a, a * 7919, view_size, tree.pyrandom("cy", a))
        for a in range(n)
    }
    boot = tree.pyrandom("boot")
    for a, s in services.items():
        seeds = [services[(a + 1) % n].descriptor()]
        other = boot.randrange(n)
        if other != a:
            seeds.append(services[other].descriptor())
        s.initialize(seeds)
    return services


def run_rounds(services, rounds, alive=lambda a: True, order_seed=3):
    rng = random.Random(order_seed)
    for _ in range(rounds):
        order = list(services)
        rng.shuffle(order)
        for a in order:
            if alive(a):
                services[a].step(services, alive)


class TestShuffle:
    def test_default_shuffle_len(self):
        s = CyclonService(1, 11, 8, random.Random(0))
        assert s.shuffle_len == 4

    def test_views_never_exceed_bound(self):
        services = build_population(30, view_size=6)
        run_rounds(services, 15)
        assert all(len(s.view) <= 6 for s in services.values())

    def test_views_never_contain_self(self):
        services = build_population(30)
        run_rounds(services, 15)
        assert all(s.address not in s.view for s in services.values())

    def test_knowledge_spreads(self):
        services = build_population(30)
        run_rounds(services, 20)
        known = set()
        for s in services.values():
            known.update(s.view.addresses)
        assert len(known) >= 25

    def test_empty_view_step_is_safe(self):
        s = CyclonService(1, 11, 5, random.Random(0))
        assert s.step({1: s}, lambda a: True) is None


class TestSelfHealing:
    def test_initiator_drops_dead_target(self):
        s = CyclonService(1, 11, 5, random.Random(0))
        s.initialize([Descriptor(2, 22, age=5)])
        s.step({1: s}, lambda a: a == 1)
        assert 2 not in s.view
        assert s.failed_exchanges == 1

    def test_dead_nodes_evaporate(self):
        services = build_population(20)
        run_rounds(services, 10)
        dead = 7
        run_rounds(services, 25, alive=lambda a: a != dead)
        referencing = [a for a, s in services.items() if a != dead and dead in s.view]
        assert len(referencing) <= 1  # near-total evaporation


class TestInDegreeBalance:
    def test_cyclon_balances_in_degree(self):
        """Cyclon's hallmark: in-degree concentrates less than the view
        union would under a star bootstrap."""
        services = build_population(40)
        run_rounds(services, 25)
        indeg = {a: 0 for a in services}
        for s in services.values():
            for addr in s.view.addresses:
                indeg[addr] += 1
        assert max(indeg.values()) <= 20

"""Tests for descriptors and partial views."""

import pytest

from repro.gossip.view import Descriptor, PartialView


def d(addr, age=0):
    return Descriptor(addr, addr * 1000, age)


class TestDescriptor:
    def test_equality_ignores_age(self):
        assert Descriptor(1, 5, age=0) == Descriptor(1, 5, age=9)

    def test_hashable(self):
        assert len({Descriptor(1, 5, 0), Descriptor(1, 5, 3)}) == 1

    def test_copy_with_age(self):
        c = d(1, age=4).copy(age=0)
        assert c.age == 0 and c.address == 1

    def test_copy_preserves_age(self):
        assert d(1, age=4).copy().age == 4


class TestPartialViewBasics:
    def test_size_bound_validated(self):
        with pytest.raises(ValueError):
            PartialView(0)

    def test_insert_and_lookup(self):
        v = PartialView(5)
        v.insert(d(1))
        assert 1 in v
        assert v.get(1).node_id == 1000
        assert len(v) == 1

    def test_freshest_wins(self):
        v = PartialView(5)
        v.insert(d(1, age=5))
        v.insert(d(1, age=2))
        assert v.get(1).age == 2
        v.insert(d(1, age=9))  # staler: ignored
        assert v.get(1).age == 2

    def test_merge_excludes_self(self):
        v = PartialView(5)
        v.merge([d(1), d(2)], exclude=1)
        assert 1 not in v and 2 in v

    def test_remove(self):
        v = PartialView(5, [d(1)])
        assert v.remove(1) is True
        assert v.remove(1) is False

    def test_addresses_and_descriptors(self):
        v = PartialView(5, [d(1), d(2)])
        assert sorted(v.addresses) == [1, 2]
        assert len(v.descriptors()) == 2


class TestAging:
    def test_age_all(self):
        v = PartialView(5, [d(1, 0), d(2, 3)])
        v.age_all()
        assert v.get(1).age == 1 and v.get(2).age == 4

    def test_drop_older_than(self):
        v = PartialView(5, [d(1, 1), d(2, 5)])
        assert v.drop_older_than(3) == 1
        assert 2 not in v

    def test_trim_keeps_freshest(self):
        v = PartialView(2)
        for i, age in [(1, 3), (2, 0), (3, 1)]:
            v.insert(d(i, age))
        v.trim()
        assert sorted(v.addresses) == [2, 3]

    def test_trim_ties_broken_by_address(self):
        v = PartialView(1)
        v.insert(d(5, 0))
        v.insert(d(2, 0))
        v.trim()
        assert v.addresses == [2]

    def test_trim_noop_when_small(self):
        v = PartialView(5, [d(1)])
        v.trim()
        assert len(v) == 1


class TestNoAliasing:
    """Views must never share mutable state — neither with each other nor
    with descriptors handed in or out (regression for the descriptor
    aliasing bug: two views built from one Descriptor list used to age
    together)."""

    def test_two_views_sharing_descriptors_age_independently(self):
        shared = [d(1, 2), d(2, 0)]
        a = PartialView(5, shared)
        b = PartialView(5, shared)
        a.age_all()
        assert a.get(1).age == 3 and a.get(2).age == 1
        assert b.get(1).age == 2 and b.get(2).age == 0

    def test_inserted_descriptor_not_retained(self):
        desc = d(1, age=0)
        v = PartialView(5, [desc])
        desc.age = 99
        assert v.get(1).age == 0

    def test_returned_descriptors_are_snapshots(self):
        v = PartialView(5, [d(1, 2)])
        for got in (v.get(1), v.descriptors()[0], next(iter(v))):
            got.age = 77
        assert v.get(1).age == 2


class TestSampling:
    def test_random_descriptor_empty(self, rng):
        assert PartialView(3).random_descriptor(rng) is None

    def test_random_descriptor_member(self, rng):
        v = PartialView(3, [d(1), d(2)])
        assert v.random_descriptor(rng).address in (1, 2)

    def test_oldest(self):
        v = PartialView(3, [d(1, 2), d(2, 7)])
        assert v.oldest_descriptor().address == 2

    def test_oldest_empty(self):
        assert PartialView(3).oldest_descriptor() is None

    def test_sample_bounded(self, rng):
        v = PartialView(10, [d(i) for i in range(8)])
        s = v.sample(3, rng)
        assert len(s) == 3
        assert len({x.address for x in s}) == 3

    def test_sample_returns_all_when_small(self, rng):
        v = PartialView(10, [d(1), d(2)])
        assert len(v.sample(5, rng)) == 2

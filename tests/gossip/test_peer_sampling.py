"""Tests for the Newscast peer sampling service."""

import random

from repro.gossip.peer_sampling import PeerSamplingService
from repro.gossip.view import Descriptor
from repro.sim.rng import SeedTree


def build_population(n, view_size=8, seed=1):
    tree = SeedTree(seed)
    services = {
        a: PeerSamplingService(a, a * 7919, view_size, tree.pyrandom("ps", a))
        for a in range(n)
    }
    # Bootstrap: everyone knows node 0 plus one random other.
    boot_rng = tree.pyrandom("boot")
    for a, s in services.items():
        seeds = [services[0].descriptor()]
        other = boot_rng.randrange(n)
        if other != a:
            seeds.append(services[other].descriptor())
        s.initialize(seeds)
    return services


def run_rounds(services, rounds, alive=lambda a: True, order_seed=3):
    rng = random.Random(order_seed)
    for _ in range(rounds):
        order = list(services)
        rng.shuffle(order)
        for a in order:
            if alive(a):
                services[a].step(services, alive)


class TestBootstrap:
    def test_initialize_excludes_self(self):
        s = PeerSamplingService(1, 11, 5, random.Random(0))
        s.initialize([Descriptor(1, 11), Descriptor(2, 22)])
        assert 1 not in s.view
        assert 2 in s.view

    def test_descriptor_is_fresh(self):
        s = PeerSamplingService(1, 11, 5, random.Random(0))
        assert s.descriptor().age == 0

    def test_empty_view_step_is_safe(self):
        s = PeerSamplingService(1, 11, 5, random.Random(0))
        assert s.step({1: s}, lambda a: True) is None


class TestConvergence:
    def test_views_fill_up(self):
        services = build_population(30)
        run_rounds(services, 15)
        sizes = [len(s.view) for s in services.values()]
        assert min(sizes) >= 6  # views near capacity

    def test_knowledge_spreads_beyond_bootstrap(self):
        services = build_population(30)
        run_rounds(services, 15)
        # Union of all views should cover a solid majority of the
        # population (small views concentrate somewhat — known Newscast
        # behaviour; nodes stay connected because they keep initiating).
        known = set()
        for s in services.values():
            known.update(s.view.addresses)
        assert len(known) >= 20

    def test_in_degree_not_degenerate(self):
        services = build_population(40)
        run_rounds(services, 20)
        indeg = {a: 0 for a in services}
        for s in services.values():
            for addr in s.view.addresses:
                indeg[addr] += 1
        # Nobody should be referenced by everyone or by no one.
        assert max(indeg.values()) < 40
        assert sum(1 for v in indeg.values() if v == 0) <= 5


class TestFailureHandling:
    def test_dead_peer_removed_on_contact(self):
        services = build_population(10)
        run_rounds(services, 5)
        dead = 3
        run_rounds(services, 15, alive=lambda a: a != dead)
        for a, s in services.items():
            if a != dead:
                assert dead not in s.view, f"node {a} still references dead {dead}"

    def test_failed_exchange_counted(self):
        s = PeerSamplingService(1, 11, 5, random.Random(0))
        s.initialize([Descriptor(2, 22)])
        s.step({1: s}, lambda a: a == 1)
        assert s.failed_exchanges == 1
        assert 2 not in s.view


class TestSampling:
    def test_sample_size(self):
        services = build_population(30)
        run_rounds(services, 10)
        s = services[5]
        assert len(s.sample(4)) == 4

    def test_sample_is_subset_of_view(self):
        services = build_population(30)
        run_rounds(services, 10)
        s = services[5]
        assert set(d.address for d in s.sample(5)) <= set(s.known_addresses())

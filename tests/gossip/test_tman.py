"""Tests for the generic T-Man topology constructor.

The classic T-Man demo: with a "closest ids first" ranking the constructed
topology converges to a ring neighborhood; with a "smallest ids" ranking
every node learns the global minima.  The tests drive the generic skeleton
the way Vitis drives its own selection.
"""

import random

import pytest

from repro.gossip.tman import TManService
from repro.gossip.view import Descriptor
from repro.sim.rng import SeedTree


def ring_distance(a, b, n):
    d = abs(a - b)
    return min(d, n - d)


#: Addresses the stand-in sampler must stop advertising (dead nodes).
_dead_for_sampler = set()


def build_population(n, view_size=6, select_kind="ring", seed=1, sample_size=4, max_age=20):
    _dead_for_sampler.clear()
    tree = SeedTree(seed)
    services = {}

    def make_select(n_total):
        if select_kind == "ring":
            def select(svc, candidates):
                ranked = sorted(
                    candidates,
                    key=lambda d: ring_distance(d.node_id, svc.node_id, n_total),
                )
                return ranked[: svc.view.max_size]
        else:  # smallest ids win
            def select(svc, candidates):
                return sorted(candidates, key=lambda d: d.node_id)[: svc.view.max_size]
        return select

    # A cheap stand-in for the peer sampling service: global uniform sample.
    sample_rng = tree.pyrandom("sample")

    def make_sampler(addr):
        def sampler():
            picks = sample_rng.sample(range(n), min(sample_size, n))
            return [
                services[p].descriptor()
                for p in picks
                if p != addr and p not in _dead_for_sampler
            ]
        return sampler

    for a in range(n):
        services[a] = TManService(
            a, a, view_size, make_select(n), make_sampler(a),
            tree.pyrandom("tman", a), max_age=max_age,
        )
    for a, s in services.items():
        s.initialize([services[(a + 7) % n].descriptor()])
    return services


def run_rounds(services, rounds, alive=lambda a: True, order_seed=3):
    rng = random.Random(order_seed)
    for _ in range(rounds):
        order = list(services)
        rng.shuffle(order)
        for a in order:
            if alive(a):
                services[a].step(services, alive)


class TestSkeleton:
    def test_view_bound_respected(self):
        services = build_population(20, view_size=4)
        run_rounds(services, 10)
        assert all(len(s.view) <= 4 for s in services.values())

    def test_no_self_references(self):
        services = build_population(20)
        run_rounds(services, 10)
        assert all(s.address not in s.view for s in services.values())

    def test_oversized_selection_rejected(self):
        def bad_select(svc, candidates):
            return candidates  # may exceed view size

        svc = TManService(0, 0, 1, bad_select, lambda: [], random.Random(0))
        with pytest.raises(ValueError):
            svc.initialize([Descriptor(1, 1), Descriptor(2, 2)])

    def test_failed_exchange_drops_peer(self):
        # A dead node's descriptors stop refreshing; with a tight age TTL
        # they must (mostly) disappear from the constructed views.  A
        # handful of stale copies can dodge aging by hopping along the
        # round order — the reason real deployments (and Vitis) pair T-Man
        # with an explicit failure detector (heartbeats) — so the
        # assertion tolerates a small residue but not broad persistence.
        services = build_population(10, max_age=5)
        run_rounds(services, 5)
        dead = 4
        _dead_for_sampler.add(dead)
        run_rounds(services, 12, alive=lambda a: a != dead)
        referencing = [a for a, s in services.items() if a != dead and dead in s.view]
        assert len(referencing) <= len(services) // 2
        # And nobody can reach it through an *active* exchange: the pick
        # path removes dead peers on contact.
        for a in referencing:
            services[a].step(services, lambda x: x != dead)


class TestConvergence:
    def test_ring_selection_converges_to_neighborhood(self):
        n = 24
        services = build_population(n, view_size=4, select_kind="ring")
        run_rounds(services, 30)
        good = 0
        for a, s in services.items():
            dists = sorted(ring_distance(d.node_id, a, n) for d in s.view)
            # Ideal neighborhood: distances 1,1,2,2
            if dists[:2] == [1, 1]:
                good += 1
        assert good >= n - 2

    def test_min_selection_floods_global_minimum(self):
        n = 24
        services = build_population(n, view_size=4, select_kind="min")
        run_rounds(services, 30)
        holders = sum(1 for s in services.values() if 0 in s.view or s.address == 0)
        assert holders >= n - 1

    def test_remove_neighbor(self):
        services = build_population(10)
        run_rounds(services, 5)
        s = services[0]
        victim = s.neighbors()[0].address
        assert s.remove_neighbor(victim) is True
        assert victim not in s.view

"""Tests for the telemetry report rendering."""

from repro.obs import Telemetry
from repro.obs.report import metrics_rows, phase_rows, render, trace_summary_rows


class TestReport:
    def _telemetry(self):
        tel = Telemetry()
        tel.metrics.counter("lookups_total", system="vitis").inc(5)
        tel.metrics.gauge("live_nodes").set(80)
        tel.metrics.histogram("lookup_hops").observe(3)
        with tel.phase("run"):
            pass
        return tel

    def test_metrics_rows_cover_all_instruments(self):
        rows = metrics_rows(self._telemetry().metrics)
        names = {r["metric"] for r in rows}
        assert "lookups_total{system=vitis}" in names
        assert "live_nodes" in names
        assert any(n.startswith("lookup_hops") for n in names)

    def test_phase_rows(self):
        rows = phase_rows(self._telemetry())
        assert [r["phase"] for r in rows] == ["run"]

    def test_trace_summary_counts_by_type(self):
        events = [{"ev": "lookup"}, {"ev": "lookup"}, {"ev": "delivery"}]
        rows = {r["event"]: r["count"] for r in trace_summary_rows(events)}
        assert rows == {"lookup": 2, "delivery": 1}

    def test_render_is_printable(self):
        text = render(self._telemetry(), title="smoke")
        assert "lookups_total" in text
        assert "run" in text

"""Tests for the JSONL trace writer."""

import io
import json

import pytest

from repro.obs import TraceWriter, read_trace


class TestTraceWriter:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as tw:
            tw.emit("lookup", t=1.25, hops=3, ok=True)
            tw.emit("phase", phase="converge", dur_s=0.5)
        events = read_trace(path)
        assert len(events) == 2
        assert events[0]["ev"] == "lookup"
        assert events[0]["t"] == 1.25
        assert events[0]["hops"] == 3 and events[0]["ok"] is True
        assert "wall" in events[0]
        # Wall-only events omit the simulated-time field entirely.
        assert "t" not in events[1]
        assert events[1]["phase"] == "converge"

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as tw:
            for i in range(10):
                tw.emit("cycle", t=float(i), cycle=i)
        for line in open(path, encoding="utf-8"):
            json.loads(line)

    def test_buffering_flushes_on_threshold(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tw = TraceWriter(path, flush_every=5)
        for i in range(4):
            tw.emit("e", n=i)
        assert open(path, encoding="utf-8").read() == ""  # still buffered
        tw.emit("e", n=4)  # fifth event triggers the flush
        assert len(open(path, encoding="utf-8").read().splitlines()) == 5
        tw.close()

    def test_external_stream_not_closed(self):
        buf = io.StringIO()
        tw = TraceWriter(buf)
        tw.emit("x")
        tw.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["ev"] == "x"

    def test_emit_after_close_raises(self, tmp_path):
        tw = TraceWriter(str(tmp_path / "t.jsonl"))
        tw.close()
        with pytest.raises(ValueError):
            tw.emit("x")

    def test_events_written_counter(self, tmp_path):
        tw = TraceWriter(str(tmp_path / "t.jsonl"))
        for _ in range(7):
            tw.emit("x")
        assert tw.events_written == 7
        tw.close()

"""Tests for the JSONL trace writer."""

import io
import json

import pytest

from repro.obs import TraceWriter, read_trace


class TestTraceWriter:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as tw:
            tw.emit("lookup", t=1.25, hops=3, ok=True)
            tw.emit("phase", phase="converge", dur_s=0.5)
        events = read_trace(path)
        assert len(events) == 2
        assert events[0]["ev"] == "lookup"
        assert events[0]["t"] == 1.25
        assert events[0]["hops"] == 3 and events[0]["ok"] is True
        assert "wall" in events[0]
        # Wall-only events omit the simulated-time field entirely.
        assert "t" not in events[1]
        assert events[1]["phase"] == "converge"

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as tw:
            for i in range(10):
                tw.emit("cycle", t=float(i), cycle=i)
        for line in open(path, encoding="utf-8"):
            json.loads(line)

    def test_buffering_flushes_on_threshold(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tw = TraceWriter(path, flush_every=5)
        for i in range(4):
            tw.emit("e", n=i)
        assert open(path, encoding="utf-8").read() == ""  # still buffered
        tw.emit("e", n=4)  # fifth event triggers the flush
        assert len(open(path, encoding="utf-8").read().splitlines()) == 5
        tw.close()

    def test_external_stream_not_closed(self):
        buf = io.StringIO()
        tw = TraceWriter(buf)
        tw.emit("x")
        tw.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["ev"] == "x"

    def test_emit_after_close_raises(self, tmp_path):
        tw = TraceWriter(str(tmp_path / "t.jsonl"))
        tw.close()
        with pytest.raises(ValueError):
            tw.emit("x")

    def test_events_written_counter(self, tmp_path):
        tw = TraceWriter(str(tmp_path / "t.jsonl"))
        for _ in range(7):
            tw.emit("x")
        assert tw.events_written == 7
        tw.close()


class TestWriteRecord:
    def test_record_appended_verbatim(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as tw:
            tw.write_record({"ev": "span", "t": 9.5, "wall": 0.001, "trial": "a/b"})
        (event,) = read_trace(path)
        assert event == {"ev": "span", "t": 9.5, "wall": 0.001, "trial": "a/b"}

    def test_counts_and_flush_threshold(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tw = TraceWriter(path, flush_every=2)
        tw.write_record({"ev": "a"})
        assert open(path, encoding="utf-8").read() == ""  # buffered
        tw.write_record({"ev": "b"})
        assert len(open(path, encoding="utf-8").read().splitlines()) == 2
        assert tw.events_written == 2
        tw.close()

    def test_after_close_raises(self, tmp_path):
        tw = TraceWriter(str(tmp_path / "t.jsonl"))
        tw.close()
        with pytest.raises(ValueError):
            tw.write_record({"ev": "x"})


class TestTruncatedTrace:
    def write_trace(self, tmp_path, tail):
        path = tmp_path / "t.jsonl"
        body = '{"ev": "a", "n": 1}\n{"ev": "b", "n": 2}\n'
        path.write_text(body + tail, encoding="utf-8")
        return str(path), len(body.encode())

    def test_truncated_trailing_line_warns_and_keeps_prefix(self, tmp_path):
        path, offset = self.write_trace(tmp_path, '{"ev": "c", "n"')
        with pytest.warns(UserWarning) as caught:
            events = read_trace(path)
        assert [e["ev"] for e in events] == ["a", "b"]
        message = str(caught[0].message)
        assert f"byte offset {offset}" in message
        assert "2 events kept" in message

    def test_truncated_line_with_trailing_newline(self, tmp_path):
        path, _ = self.write_trace(tmp_path, '{"ev": "c"\n')
        with pytest.warns(UserWarning):
            events = read_trace(path)
        assert len(events) == 2

    def test_midfile_corruption_still_raises(self, tmp_path):
        path, _ = self.write_trace(tmp_path, 'garbage\n{"ev": "c", "n": 3}\n')
        with pytest.raises(json.JSONDecodeError):
            read_trace(path)

    def test_intact_file_no_warning(self, tmp_path, recwarn):
        path, _ = self.write_trace(tmp_path, '{"ev": "c", "n": 3}\n')
        events = read_trace(path)
        assert len(events) == 3
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]

"""Tests for the delivery auditor (repro.obs.audit)."""

from repro.obs.audit import audit_trace, audit_trees, event_trees
from repro.obs.spans import build_span_trees


def span(trace, sid, kind, src, dst, hop, parent=None, **extra):
    e = {"ev": "span", "trace": trace, "span": sid, "kind": kind,
         "src": src, "dst": dst, "hop": hop}
    if parent is not None:
        e["parent"] = parent
    e.update(extra)
    return e


def miss(trace, addr, cause, **extra):
    return dict({"ev": "miss", "trace": trace, "addr": addr, "cause": cause}, **extra)


def healthy_event(trace="e0", subs=2):
    return [
        span(trace, 0, "publish", 0, 0, 0, topic=7, event=1, publisher=0, subs=subs),
        span(trace, 1, "flood", 0, 1, 1, parent=0),
        span(trace, 2, "deliver", 1, 1, 1, parent=1),
        span(trace, 3, "flood", 1, 2, 2, parent=1),
        span(trace, 4, "deliver", 2, 2, 2, parent=3),
    ]


class TestAudit:
    def test_healthy_event_passes(self):
        report = audit_trace(healthy_event())
        assert report.ok
        assert report.n_events == 1
        assert report.expected_total == 2 and report.delivered_total == 2
        assert report.missed_total == 0 and report.unexplained_total == 0
        assert report.failures() == []

    def test_attributed_miss_passes(self):
        events = healthy_event(subs=3) + [miss("e0", 5, "faulted_link", src=1, dst=5)]
        report = audit_trace(events)
        assert report.ok
        assert report.missed_total == 1
        assert report.cause_totals() == {"faulted_link": 1}

    def test_explicit_unexplained_miss_fails(self):
        events = healthy_event(subs=3) + [miss("e0", 5, "unexplained")]
        report = audit_trace(events)
        assert not report.ok
        assert report.unexplained_total == 1
        assert report.cause_totals() == {}

    def test_unattributed_gap_counts_as_unexplained(self):
        # subs=4, 2 delivered, only 1 miss event: one subscriber vanished.
        events = healthy_event(subs=4) + [miss("e0", 5, "dead_node")]
        report = audit_trace(events)
        assert not report.ok
        assert report.unexplained_total == 1
        assert report.cause_totals() == {"dead_node": 1}

    def test_incomplete_tree_fails(self):
        events = [e for e in healthy_event() if e.get("span") != 1]
        report = audit_trace(events)
        assert not report.ok
        assert report.n_incomplete == 1
        (bad,) = report.failures()
        assert not bad.complete

    def test_install_traces_excluded(self):
        install = [
            span("i0", 0, "lookup", 3, 3, 0, topic=7, gateway=3),
            span("i0", 1, "lookup", 3, 9, 1, parent=0),
        ]
        trees = build_span_trees(healthy_event() + install)
        assert len(trees) == 2
        assert len(event_trees(trees)) == 1
        report = audit_trees(trees)
        assert report.n_events == 1 and report.ok

    def test_per_event_fields(self):
        events = healthy_event() + [
            dict(e, trial="rvr/2.0") for e in healthy_event("e1")
        ]
        report = audit_trace(events)
        assert report.n_events == 2
        by_trial = {e.trial: e for e in report.events}
        assert by_trial[None].trace_id == "e0"
        assert by_trial["rvr/2.0"].trace_id == "e1"
        assert all(e.topic == 7 and e.publisher == 0 for e in report.events)

    def test_empty_trace(self):
        report = audit_trace([])
        assert report.ok and report.n_events == 0

"""Tests for the perf bench harness, the BENCH_*.json trajectory, and
the tolerance-band baseline comparison."""

import copy
import json

import pytest

from repro import obs
from repro.obs import perf
from repro.obs.perf import (
    BENCH_SCHEMA,
    BenchHarness,
    append_run,
    bench_path,
    collect_callable,
    compare_runs,
    latest_run,
    load_trajectory,
    new_trajectory,
    rows_fingerprint,
    validate_run,
    validate_trajectory,
    write_trajectory,
)


def fake_run(**over):
    """A minimal schema-valid bench run for trajectory/compare tests."""
    run = {
        "scenario": "fig8",
        "wall_s": 10.0,
        "memory_profiling": True,
        "phases": {"fig8": {"calls": 1, "total_s": 10.0}},
        "counters": {"engine_events_total": 1000.0},
        "throughput": {"events_per_s": 100.0, "messages_per_s": 200.0},
        "memory": {"tracemalloc_peak_kb": 512.0, "peak_rss_kb": 4096.0},
        "provenance": {
            "git_sha": "a" * 40,
            "code_hash": "b" * 12,
            "python": "3.11.0",
            "cpu_count": 1,
            "timestamp": "2026-01-01T00:00:00Z",
        },
        "seed": 1,
        "scale": 0.1,
        "jobs": 1,
        "trials": 1,
        "rows": 5,
        "rows_sha256": "c" * 64,
    }
    out = copy.deepcopy(run)
    out.update(copy.deepcopy(over))
    return out


class TestCollectCallable:
    def instrumented_job(self):
        tel = obs.current()
        with tel.phase("work"):
            tel.metrics.counter("engine_events_total").inc(50)
            tel.metrics.counter("delivery_msgs_total", system="vitis").inc(10)
            tel.metrics.counter("delivery_msgs_total", system="rvr").inc(5)
        return [1, 2]

    def test_collects_counters_phases_and_provenance(self):
        collected = collect_callable("bench", self.instrumented_job)
        run = collected.run
        assert collected.result == [1, 2]
        assert run["scenario"] == "bench"
        assert run["wall_s"] > 0
        # Counters summed across label sets, keyed by bare name.
        assert run["counters"]["engine_events_total"] == 50
        assert run["counters"]["delivery_msgs_total"] == 15
        # The callable ran inside the named phase.
        assert run["phases"]["bench"]["calls"] == 1
        assert run["phases"]["bench/work"]["calls"] == 1
        assert run["throughput"]["events_per_s"] > 0
        assert run["throughput"]["messages_per_s"] > 0
        for key in ("code_hash", "python", "cpu_count", "repro_version"):
            assert key in run["provenance"], key
        validate_run(run)

    def test_memory_block_present_by_default(self):
        run = collect_callable("bench", self.instrumented_job).run
        assert run["memory_profiling"] is True
        assert run["memory"]["tracemalloc_peak_kb"] > 0
        assert isinstance(run["memory"]["top_allocators"], list)

    def test_no_memory_skips_tracemalloc(self):
        run = collect_callable(
            "bench", self.instrumented_job, memory=False
        ).run
        assert run["memory_profiling"] is False
        assert run["memory"] is None
        validate_run(run)

    def test_profile_rows_ordered_by_cumulative_time(self):
        collected = collect_callable(
            "bench", self.instrumented_job, profile=True
        )
        rows = collected.profile_rows(top=10)
        assert rows, "profiling produced no rows"
        cums = [r["cumtime_s"] for r in rows]
        assert cums == sorted(cums, reverse=True)
        assert all({"function", "calls", "tottime_s", "cumtime_s"} <= set(r)
                   for r in rows)

    def test_profile_rows_deterministic_order_for_tied_timings(self):
        """Rows with equal (rounded) cumulative time sort by function
        name, so profile diffs between runs are reordering-free."""
        import pstats

        collected = collect_callable("bench", self.instrumented_job, profile=True)
        stats = pstats.Stats.__new__(pstats.Stats)
        # Three synthetic sites: two exactly tied after rounding (their
        # raw floats differ in the noise digits), one clearly slower.
        stats.stats = {
            ("b.py", 1, "zeta"): (1, 1, 0.1, 0.50004, {}),
            ("a.py", 1, "alpha"): (1, 1, 0.1, 0.50001, {}),
            ("c.py", 1, "omega"): (1, 1, 0.2, 0.9, {}),
        }
        collected.profile = stats
        rows = collected.profile_rows()
        assert [r["function"] for r in rows] == [
            "c.py:1:omega", "a.py:1:alpha", "b.py:1:zeta",
        ]
        # Flipping the raw sub-rounding noise must not change the order.
        stats.stats[("a.py", 1, "alpha")] = (1, 1, 0.1, 0.50004, {})
        stats.stats[("b.py", 1, "zeta")] = (1, 1, 0.1, 0.50001, {})
        assert [r["function"] for r in rows] == [
            r["function"] for r in collected.profile_rows()
        ]

    def test_no_profile_means_no_rows(self):
        collected = collect_callable("bench", self.instrumented_job)
        assert collected.profile is None
        assert collected.profile_rows() == []


class TestRowsFingerprint:
    def test_stable_and_value_sensitive(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": 3.5}]
        same = [{"b": 2.5, "a": 1}, {"b": 3.5, "a": 2}]  # key order differs
        assert rows_fingerprint(rows) == rows_fingerprint(same)
        changed = [{"a": 1, "b": 2.5}, {"a": 2, "b": 3.6}]
        assert rows_fingerprint(rows) != rows_fingerprint(changed)

    def test_row_order_matters(self):
        rows = [{"a": 1}, {"a": 2}]
        assert rows_fingerprint(rows) != rows_fingerprint(list(reversed(rows)))


class TestBenchHarness:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            BenchHarness("nope")

    def test_fig8_run_is_schema_valid(self):
        harness = BenchHarness("fig8", seed=1, scale=0.1, memory=False)
        run = harness.run()
        validate_run(run)
        assert run["scenario"] == "fig8"
        assert run["seed"] == 1 and run["scale"] == 0.1 and run["jobs"] == 1
        assert run["trials"] == 1
        assert run["rows"] > 0
        assert len(run["rows_sha256"]) == 64
        assert run["counters"]["trials_total"] == 1

    def test_same_spec_reproduces_rows_sha(self):
        # The determinism contract, surfaced through the bench record.
        first = BenchHarness("fig8", seed=1, scale=0.1, memory=False).run()
        second = BenchHarness("fig8", seed=1, scale=0.1, memory=False).run()
        assert first["rows_sha256"] == second["rows_sha256"]
        other = BenchHarness("fig8", seed=2, scale=0.1, memory=False).run()
        assert other["rows_sha256"] != first["rows_sha256"]

    def test_overrides_pin_population_and_stamp_the_run(self):
        # The --scale-sweep micro-mode pins the leading scale knob; the
        # override must reach the sweep and be recorded in the run.
        plain = BenchHarness("fig8", seed=1, scale=0.1, memory=False).run()
        pinned = BenchHarness(
            "fig8", seed=1, scale=0.1, memory=False,
            overrides={"n_users": 500},
        ).run()
        assert "overrides" not in plain
        assert pinned["overrides"] == {"n_users": 500}
        assert pinned["rows_sha256"] != plain["rows_sha256"]
        validate_run(pinned)

    def test_override_mismatch_is_not_row_drift(self):
        # Same seed/scale/trials but different populations: compare must
        # treat the pair as different specs, not flag drift.
        plain = BenchHarness("fig8", seed=1, scale=0.1, memory=False).run()
        pinned = BenchHarness(
            "fig8", seed=1, scale=0.1, memory=False,
            overrides={"n_users": 500},
        ).run()
        result = compare_runs(pinned, plain, tolerances={"wall_s": 100.0})
        assert not result.drift
        assert any("spec differs" in n for n in result.notes)


class TestTrajectoryIO:
    def test_append_creates_then_appends(self, tmp_path):
        path = tmp_path / "BENCH_fig8.json"
        doc = append_run(path, fake_run())
        assert doc["schema"] == BENCH_SCHEMA
        assert len(doc["runs"]) == 1
        doc = append_run(path, fake_run(wall_s=11.0))
        assert len(doc["runs"]) == 2
        on_disk = load_trajectory(path)
        assert on_disk == doc
        assert latest_run(on_disk)["wall_s"] == 11.0

    def test_append_rejects_scenario_mismatch(self, tmp_path):
        path = tmp_path / "BENCH_fig8.json"
        append_run(path, fake_run())
        with pytest.raises(ValueError):
            append_run(path, fake_run(scenario="fig4"))

    def test_validate_run_rejects_missing_fields(self):
        for key in ("scenario", "wall_s", "phases", "counters",
                    "throughput", "provenance"):
            run = fake_run()
            del run[key]
            with pytest.raises(ValueError):
                validate_run(run)
        run = fake_run()
        del run["provenance"]["code_hash"]
        with pytest.raises(ValueError):
            validate_run(run)

    def test_validate_trajectory_rejects_bad_schema(self):
        doc = new_trajectory("fig8")
        doc["schema"] = "something/else"
        with pytest.raises(ValueError):
            validate_trajectory(doc)

    def test_validate_trajectory_rejects_foreign_run(self):
        doc = new_trajectory("fig8")
        doc["runs"].append(fake_run(scenario="fig4"))
        with pytest.raises(ValueError):
            validate_trajectory(doc)

    def test_latest_run_on_empty_trajectory(self):
        with pytest.raises(ValueError):
            latest_run(new_trajectory("fig8"))

    def test_write_is_parseable_json_with_trailing_newline(self, tmp_path):
        path = tmp_path / "BENCH_fig8.json"
        doc = new_trajectory("fig8")
        doc["runs"].append(fake_run())
        write_trajectory(path, doc)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == doc

    def test_bench_path_defaults_to_repo_root(self):
        from repro.provenance import repo_root

        assert bench_path("fig8") == repo_root() / "BENCH_fig8.json"


class TestCompareRuns:
    def test_identical_runs_ok(self):
        result = compare_runs(fake_run(), fake_run())
        assert result.ok
        assert not result.regressions
        assert not result.drift
        metrics = {d.metric for d in result.deltas}
        assert {"wall_s", "events_per_s", "messages_per_s",
                "peak_rss_kb", "tracemalloc_peak_kb"} <= metrics

    def test_twenty_pct_wall_regression_trips_default_band(self):
        # The acceptance bar: an injected >=20% wall-time regression must
        # fail the default 15% band.
        result = compare_runs(fake_run(wall_s=12.0), fake_run(wall_s=10.0))
        assert not result.ok
        assert [d.metric for d in result.regressions] == ["wall_s"]

    def test_change_at_tolerance_is_not_a_regression(self):
        result = compare_runs(fake_run(wall_s=11.5), fake_run(wall_s=10.0))
        assert result.ok  # exactly 15%: band is strict-greater

    def test_direction_lower_throughput_is_worse(self):
        run = fake_run()
        run["throughput"]["events_per_s"] = 70.0  # -30%
        assert not compare_runs(run, fake_run()).ok
        faster = fake_run()
        faster["throughput"]["events_per_s"] = 200.0  # +100%: an improvement
        assert compare_runs(faster, fake_run()).ok

    def test_faster_wall_is_not_a_regression(self):
        assert compare_runs(fake_run(wall_s=1.0), fake_run(wall_s=10.0)).ok

    def test_tolerance_override(self):
        result = compare_runs(
            fake_run(wall_s=30.0), fake_run(wall_s=10.0),
            tolerances={"wall_s": 5.0},
        )
        assert result.ok

    def test_same_spec_row_drift_fails(self):
        result = compare_runs(fake_run(rows_sha256="d" * 64), fake_run())
        assert result.drift
        assert not result.ok
        assert any("drift" in note for note in result.notes)

    def test_different_spec_skips_row_comparison(self):
        result = compare_runs(fake_run(seed=2, rows_sha256="d" * 64), fake_run())
        assert not result.drift
        assert any("spec differs" in note for note in result.notes)

    def test_memory_profiling_mismatch_drops_distorted_metrics(self):
        current = fake_run(memory_profiling=False, memory=None)
        result = compare_runs(current, fake_run())
        compared = {d.metric for d in result.deltas}
        assert "wall_s" not in compared  # tracemalloc distorts wall time
        assert "tracemalloc_peak_kb" not in compared
        assert "peak_rss_kb" not in compared
        assert {"events_per_s", "messages_per_s"} <= compared
        assert any("memory profiling" in note for note in result.notes)

    def test_zero_baseline_metric(self):
        base = fake_run()
        base["throughput"]["events_per_s"] = 0.0
        cur = fake_run()
        cur["throughput"]["events_per_s"] = 0.0
        assert compare_runs(cur, base).ok  # 0 -> 0 is no change


class TestBenchRenderers:
    def test_summary_and_phase_rows(self):
        from repro.obs.report import bench_phase_rows, bench_summary_rows

        run = fake_run()
        summary = {r["metric"]: r["value"] for r in bench_summary_rows(run)}
        assert summary["wall_s"] == 10.0
        assert summary["tracemalloc_peak_kb"] == 512.0
        phases = bench_phase_rows(run)
        # Old trajectories carry no duration histograms: the quantile
        # columns render blank rather than vanishing.
        assert phases == [{"phase": "fig8", "calls": 1, "total_s": 10.0,
                           "p50_s": "", "p99_s": ""}]

    def test_phase_deltas_need_two_runs(self):
        from repro.obs.report import bench_phase_delta_rows

        doc = new_trajectory("fig8")
        doc["runs"].append(fake_run())
        assert bench_phase_delta_rows(doc) == []
        second = fake_run(wall_s=5.0)
        second["phases"]["fig8"]["total_s"] = 5.0
        doc["runs"].append(second)
        (row,) = bench_phase_delta_rows(doc)
        assert row["phase"] == "fig8"
        assert row["delta_pct"] == -50.0
        assert row["since_first_pct"] == -50.0

    def test_compare_rows_flag_regressions_and_drift(self):
        from repro.obs.report import bench_compare_rows

        result = compare_runs(
            fake_run(wall_s=20.0, rows_sha256="d" * 64), fake_run()
        )
        rows = {r["metric"]: r for r in bench_compare_rows(result)}
        assert rows["wall_s"]["status"] == "REGRESSED"
        assert rows["events_per_s"]["status"] == "ok"
        assert rows["rows_sha256"]["status"] == "DRIFT"

    def test_bench_report_renders(self):
        from repro.obs.report import bench_report

        doc = new_trajectory("fig8")
        doc["runs"].append(fake_run())
        doc["runs"].append(fake_run(wall_s=12.0))
        text = bench_report(doc)
        assert "bench trajectory: fig8 (2 run(s))" in text
        assert "phase deltas" in text
        assert "memory_profiling=True" in text

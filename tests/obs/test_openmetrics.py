"""OpenMetrics rendering and the grammar validator."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    render_openmetrics,
    validate_exposition,
)


def one_node_snapshot():
    r = MetricsRegistry()
    r.counter("live_sent_total").inc(5)
    r.counter("live_retransmits", cls="reliable").inc(2)
    r.gauge("live_queue_depth").set(3)
    r.histogram("live_delivery_hops", buckets=(1, 2, 4)).observe(1)
    r.histogram("live_delivery_hops", buckets=(1, 2, 4)).observe(3)
    return r.snapshot()


class TestRender:
    def test_round_trips_through_validator(self):
        text = render_openmetrics({7001: one_node_snapshot(),
                                   7002: one_node_snapshot()})
        assert validate_exposition(text) > 0

    def test_counter_family_drops_total_and_sample_keeps_it(self):
        text = render_openmetrics({0: one_node_snapshot()})
        assert "# TYPE live_sent counter" in text
        assert 'live_sent_total{node="0"} 5' in text
        # The _total suffix is added exactly once even for names that
        # already carry it in the registry.
        assert "live_sent_total_total" not in text

    def test_every_sample_is_node_labelled(self):
        text = render_openmetrics({7001: one_node_snapshot()})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'node="7001"' in line

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_openmetrics({0: one_node_snapshot()})
        lines = [l for l in text.splitlines()
                 if l.startswith("live_delivery_hops")]
        by_le = {}
        for line in lines:
            if "_bucket" in line:
                le = line.split('le="')[1].split('"')[0]
                by_le[le] = float(line.rsplit(" ", 1)[1])
        assert by_le["1"] == 1.0       # the observe(1)
        assert by_le["2"] == 1.0
        assert by_le["4"] == 2.0       # +observe(3), cumulative
        assert by_le["+Inf"] == 2.0
        assert any(l.startswith("live_delivery_hops_count") and
                   l.endswith(" 2") for l in lines)
        assert any(l.startswith("live_delivery_hops_sum") for l in lines)

    def test_ends_with_eof_and_newline(self):
        text = render_openmetrics({})
        assert text.endswith("# EOF\n")

    def test_deterministic_across_scrapes(self):
        snaps = {1: one_node_snapshot(), 2: one_node_snapshot()}
        assert render_openmetrics(snaps) == render_openmetrics(snaps)

    def test_content_type_is_openmetrics_1_0(self):
        assert "openmetrics-text" in CONTENT_TYPE
        assert "version=1.0.0" in CONTENT_TYPE


class TestValidator:
    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            validate_exposition("# TYPE a counter\na_total 1\n")

    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(ValueError, match="newline"):
            validate_exposition("# EOF")

    def test_rejects_untyped_sample(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            validate_exposition("mystery 1\n# EOF\n")

    def test_rejects_counter_sample_without_total(self):
        doc = "# TYPE a counter\na 1\n# EOF\n"
        with pytest.raises(ValueError, match="_total"):
            validate_exposition(doc)

    def test_rejects_non_monotonic_buckets(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
            "h_sum 9\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="non-monotonic"):
            validate_exposition(doc)

    def test_rejects_histogram_without_inf_bucket(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "# EOF\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_exposition(doc)

    def test_rejects_count_disagreeing_with_inf(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_count 7\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="_count"):
            validate_exposition(doc)

    def test_rejects_duplicate_type_and_labels(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_exposition(
                "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n")
        with pytest.raises(ValueError, match="duplicate label"):
            validate_exposition(
                '# TYPE a gauge\na{x="1",x="2"} 1\n# EOF\n')

    def test_rejects_content_after_eof(self):
        with pytest.raises(ValueError, match="after"):
            validate_exposition("# TYPE a gauge\n# EOF\na 1\n# EOF\n")

    def test_accepts_escaped_label_values(self):
        doc = '# TYPE a gauge\na{x="with \\"quotes\\", comma"} 1\n# EOF\n'
        assert validate_exposition(doc) == 1

    def test_counts_samples(self):
        doc = "# TYPE a counter\na_total 1\na_total{x=\"y\"} 2\n# EOF\n"
        assert validate_exposition(doc) == 2

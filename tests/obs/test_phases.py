"""Tests for the nested phase timer."""

import pytest

from repro.obs import PhaseTimer


def make_timer(times):
    """A PhaseTimer on a deterministic fake clock (pops from ``times``)."""
    it = iter(times)
    return PhaseTimer(clock=lambda: next(it))


class TestPhaseTimer:
    def test_single_phase(self):
        pt = make_timer([0.0, 2.5])
        with pt.phase("build"):
            pass
        assert pt.total("build") == 2.5
        assert pt.calls("build") == 1

    def test_nesting_joins_paths(self):
        # Enter fig4 at 0, converge at 1; exit converge at 4, fig4 at 10.
        pt = make_timer([0.0, 1.0, 4.0, 10.0])
        with pt.phase("fig4"):
            with pt.phase("converge"):
                pass
        assert pt.total("fig4/converge") == 3.0
        assert pt.total("fig4") == 10.0  # inclusive of children
        assert pt.calls("fig4") == 1

    def test_reentry_accumulates(self):
        pt = make_timer([0.0, 1.0, 5.0, 7.0])
        for _ in range(2):
            with pt.phase("measure"):
                pass
        assert pt.calls("measure") == 2
        assert pt.total("measure") == 3.0  # 1.0 + 2.0

    def test_same_name_different_parents_are_distinct(self):
        pt = make_timer([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        with pt.phase("a"):
            with pt.phase("x"):
                pass
        with pt.phase("b"):
            with pt.phase("x"):
                pass
        assert pt.calls("a/x") == 1
        assert pt.calls("b/x") == 1
        assert pt.calls("x") == 0

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().phase("a/b")

    def test_on_exit_hook(self):
        seen = []
        pt = make_timer([0.0, 1.0, 3.0, 6.0])
        pt.on_exit = lambda path, dur: seen.append((path, dur))
        with pt.phase("outer"):
            with pt.phase("inner"):
                pass
        # Children exit before parents, with full paths and durations.
        assert seen == [("outer/inner", 2.0), ("outer", 6.0)]

    def test_to_rows_pct_only_for_top_level(self):
        pt = make_timer([0.0, 1.0, 3.0, 4.0])
        with pt.phase("run"):
            with pt.phase("sub"):
                pass
        rows = {r["phase"]: r for r in pt.to_rows()}
        assert rows["run"]["pct_of_run"] == 100.0
        assert rows["run/sub"]["pct_of_run"] is None
        assert rows["run/sub"]["total_s"] == 2.0

    def test_to_dict(self):
        pt = make_timer([0.0, 2.0])
        with pt.phase("p"):
            pass
        assert pt.to_dict() == {"p": {"calls": 1, "total_s": 2.0}}

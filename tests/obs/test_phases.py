"""Tests for the nested phase timer."""

import pytest

from repro.obs import PhaseTimer


def make_timer(times):
    """A PhaseTimer on a deterministic fake clock (pops from ``times``)."""
    it = iter(times)
    return PhaseTimer(clock=lambda: next(it))


class TestPhaseTimer:
    def test_single_phase(self):
        pt = make_timer([0.0, 2.5])
        with pt.phase("build"):
            pass
        assert pt.total("build") == 2.5
        assert pt.calls("build") == 1

    def test_nesting_joins_paths(self):
        # Enter fig4 at 0, converge at 1; exit converge at 4, fig4 at 10.
        pt = make_timer([0.0, 1.0, 4.0, 10.0])
        with pt.phase("fig4"):
            with pt.phase("converge"):
                pass
        assert pt.total("fig4/converge") == 3.0
        assert pt.total("fig4") == 10.0  # inclusive of children
        assert pt.calls("fig4") == 1

    def test_reentry_accumulates(self):
        pt = make_timer([0.0, 1.0, 5.0, 7.0])
        for _ in range(2):
            with pt.phase("measure"):
                pass
        assert pt.calls("measure") == 2
        assert pt.total("measure") == 3.0  # 1.0 + 2.0

    def test_same_name_different_parents_are_distinct(self):
        pt = make_timer([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        with pt.phase("a"):
            with pt.phase("x"):
                pass
        with pt.phase("b"):
            with pt.phase("x"):
                pass
        assert pt.calls("a/x") == 1
        assert pt.calls("b/x") == 1
        assert pt.calls("x") == 0

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().phase("a/b")

    def test_on_exit_hook(self):
        seen = []
        pt = make_timer([0.0, 1.0, 3.0, 6.0])
        pt.on_exit = lambda path, dur: seen.append((path, dur))
        with pt.phase("outer"):
            with pt.phase("inner"):
                pass
        # Children exit before parents, with full paths and durations.
        assert seen == [("outer/inner", 2.0), ("outer", 6.0)]

    def test_to_rows_pct_only_for_top_level(self):
        pt = make_timer([0.0, 1.0, 3.0, 4.0])
        with pt.phase("run"):
            with pt.phase("sub"):
                pass
        rows = {r["phase"]: r for r in pt.to_rows()}
        assert rows["run"]["pct_of_run"] == 100.0
        assert rows["run/sub"]["pct_of_run"] is None
        assert rows["run/sub"]["total_s"] == 2.0

    def test_to_dict(self):
        pt = make_timer([0.0, 2.0])
        with pt.phase("p"):
            pass
        d = pt.to_dict()
        assert set(d) == {"p"}
        assert d["p"]["calls"] == 1
        assert d["p"]["total_s"] == 2.0
        # A single 2s call: both duration quantiles sit on that sample.
        assert d["p"]["p50_s"] == 2.0
        assert d["p"]["p99_s"] == 2.0

    def test_to_dict_quantiles_bracket_mixed_durations(self):
        pt = make_timer([0.0, 0.001, 1.0, 9.0])
        with pt.phase("p"):
            pass
        with pt.phase("p"):
            pass
        d = pt.to_dict()
        assert d["p"]["calls"] == 2
        assert d["p"]["p50_s"] <= d["p"]["p99_s"]
        assert d["p"]["p99_s"] <= 8.0  # clamped to the observed max


class TestMerge:
    """Snapshot/merge — the worker-to-parent fold ``ParallelExecutor``
    relies on (see ``test_executor.py`` for the end-to-end check)."""

    def test_merge_sums_totals_and_calls(self):
        parent = make_timer([0.0, 1.0])
        with parent.phase("converge"):
            pass
        parent.merge({"totals": {"converge": 2.5}, "calls": {"converge": 3}})
        assert parent.total("converge") == 3.5
        assert parent.calls("converge") == 4

    def test_prefix_nests_worker_paths(self):
        # A worker's 'converge' lands under the parent's 'fig4', exactly
        # where a serial run would have recorded it.
        parent = PhaseTimer()
        parent.merge(
            {"totals": {"converge": 2.0}, "calls": {"converge": 1}},
            prefix="fig4",
        )
        assert parent.total("fig4/converge") == 2.0
        assert parent.calls("fig4/converge") == 1
        assert parent.total("converge") == 0.0

    def test_prefix_preserves_nested_worker_subpaths(self):
        # Workers nest internally too: 'converge/probe' must become
        # 'fig4/converge/probe', not flatten.
        parent = PhaseTimer()
        parent.merge(
            {
                "totals": {"converge": 5.0, "converge/probe": 2.0},
                "calls": {"converge": 1, "converge/probe": 4},
            },
            prefix="fig4",
        )
        assert parent.total("fig4/converge") == 5.0
        assert parent.total("fig4/converge/probe") == 2.0
        assert parent.calls("fig4/converge/probe") == 4

    def test_worker_snapshots_fold_to_serial_totals(self):
        # Run two 'trials' serially on one timer, then the same trials on
        # two separate 'worker' timers merged into a fresh parent: paths,
        # totals and call counts must match exactly.
        def run_trial(pt, t0):
            # build: t0..t0+1; converge: t0+1..t0+4; trial: t0..t0+6
            times = [t0, t0, t0 + 1.0, t0 + 1.0, t0 + 4.0, t0 + 6.0]
            it = iter(times)
            pt._clock = lambda: next(it)
            with pt.phase("trial"):
                with pt.phase("build"):
                    pass
                with pt.phase("converge"):
                    pass

        serial = PhaseTimer()
        for t0 in (0.0, 100.0):
            run_trial(serial, t0)

        workers = []
        for t0 in (0.0, 100.0):
            w = PhaseTimer()
            run_trial(w, t0)
            workers.append(w.snapshot())

        parent = PhaseTimer()
        for snap in workers:
            parent.merge(snap)

        assert parent.to_dict() == serial.to_dict()
        assert parent.calls("trial") == 2
        assert parent.total("trial/converge") == serial.total("trial/converge")

    def test_merge_does_not_fire_on_exit(self):
        # Merged entries were already reported in the worker; re-firing
        # would double-count trace events.
        seen = []
        parent = PhaseTimer()
        parent.on_exit = lambda path, dur: seen.append((path, dur))
        parent.merge({"totals": {"p": 1.0}, "calls": {"p": 1}})
        assert seen == []
        assert parent.total("p") == 1.0

    def test_missing_calls_default_to_one(self):
        parent = PhaseTimer()
        parent.merge({"totals": {"p": 1.0}, "calls": {}})
        assert parent.calls("p") == 1

    def test_merge_into_open_phase_via_telemetry(self):
        # Telemetry.merge_snapshot prefixes with the parent's *currently
        # open* path — a worker snapshot folded while 'fig4' is open nests
        # under 'fig4/'.
        from repro.obs import Telemetry

        telemetry = Telemetry()
        with telemetry.phase("fig4"):
            telemetry.merge_snapshot(
                {
                    "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
                    "phases": {
                        "totals": {"converge": 2.0},
                        "calls": {"converge": 1},
                    },
                }
            )
        assert telemetry.phases.total("fig4/converge") == 2.0
        assert telemetry.phases.calls("fig4/converge") == 1

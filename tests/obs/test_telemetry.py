"""Tests for the Telemetry facade, the no-op backend and ambient scoping."""

import io
import json

from repro import obs
from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.experiments.runner import build_vitis, measure
from repro.obs import NULL, NullTelemetry, Telemetry
from tests.conftest import small_subscriptions


class TestTelemetryFacade:
    def test_event_routes_to_trace(self):
        buf = io.StringIO()
        tel = Telemetry(trace=buf)
        assert tel.enabled and tel.tracing
        tel.event("lookup", t=1.0, hops=2)
        tel.close()
        assert json.loads(buf.getvalue())["hops"] == 2

    def test_event_without_trace_is_noop(self):
        tel = Telemetry()
        assert tel.enabled and not tel.tracing
        tel.event("lookup", t=1.0, hops=2)  # must not raise

    def test_phase_exit_emits_trace_event(self):
        buf = io.StringIO()
        tel = Telemetry(trace=buf)
        with tel.phase("converge"):
            pass
        tel.close()
        ev = json.loads(buf.getvalue())
        assert ev["ev"] == "phase"
        assert ev["phase"] == "converge"
        assert ev["dur_s"] >= 0

    def test_metrics_dump_shape(self):
        tel = Telemetry()
        tel.metrics.counter("c").inc()
        with tel.phase("p"):
            pass
        tel.series.record("probe", 0.0, 1.0)
        dump = tel.metrics_dump()
        json.dumps(dump)
        assert dump["metrics"]["counters"] == {"c": 1.0}
        assert "p" in dump["phases"]
        assert dump["series"]["probe"] == [(0.0, 1.0)]

    def test_progress_throttled_and_lazy(self):
        stream = io.StringIO()
        tel = Telemetry(progress=True, progress_interval=3600.0,
                        progress_stream=stream)
        calls = []
        tel.progress(lambda: calls.append(1) or "first")
        tel.progress(lambda: calls.append(1) or "second")  # throttled
        assert stream.getvalue() == "[progress] first\n"
        assert calls == [1]  # the throttled thunk was never evaluated


class TestNullTelemetry:
    def test_singleton_disabled(self):
        assert isinstance(NULL, NullTelemetry)
        assert not NULL.enabled
        assert not NULL.tracing
        assert NULL.trace is None

    def test_all_operations_are_noops_with_zero_output(self):
        NULL.event("lookup", t=1.0, hops=3)
        with NULL.phase("anything"):
            pass
        NULL.progress(lambda: 1 / 0)  # thunk must never run
        NULL.close()
        assert len(NULL.phases) == 0
        assert NULL.metrics_dump() == {"metrics": {}, "phases": {}, "series": {}}

    def test_instrumented_run_with_null_records_nothing(self):
        p = VitisProtocol(
            small_subscriptions(),
            VitisConfig(rt_size=10, n_sw_links=1),
            seed=7,
            election_every=0,
            relay_every=0,
        )
        assert p.telemetry is NULL
        p.run_cycles(5)
        p.finalize()
        measure(p, n_events=20, seed=7)
        assert len(NULL.metrics) == 0
        assert len(NULL.phases) == 0
        assert len(NULL.series) == 0


class TestScope:
    def test_current_defaults_to_null(self):
        assert obs.current() is NULL

    def test_scope_installs_and_restores(self):
        tel = Telemetry()
        with obs.scope(tel) as installed:
            assert installed is tel
            assert obs.current() is tel
        assert obs.current() is NULL

    def test_scope_restores_on_exception(self):
        tel = Telemetry()
        try:
            with obs.scope(tel):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.current() is NULL

    def test_protocol_picks_up_ambient_telemetry(self):
        tel = Telemetry(trace=io.StringIO())
        with obs.scope(tel):
            p = build_vitis(
                small_subscriptions(),
                VitisConfig(rt_size=10, n_sw_links=1),
                seed=7,
                min_cycles=5,
                max_cycles=20,
            )
            measure(p, n_events=20, seed=7)
        tel.trace.flush()
        assert p.telemetry is tel
        dump = tel.metrics_dump()
        counters = dump["metrics"]["counters"]
        assert counters["engine_cycles_total"] >= 5
        assert counters["events_published_total{system=vitis}"] == 20
        assert "gossip_ps_exchanges_total{system=vitis}" in counters
        for phase in ("build", "converge", "finalize", "measure"):
            assert tel.phases.calls(phase) == 1
        # The trace carries the four headline event types.
        events = [json.loads(l) for l in tel.trace._fh.getvalue().splitlines()]
        kinds = {e["ev"] for e in events}
        assert {"gossip_exchange", "lookup", "delivery", "cycle"} <= kinds

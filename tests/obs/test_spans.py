"""Tests for causal span tracing primitives (repro.obs.spans)."""

import io
import json

from repro import obs
from repro.obs.spans import (
    CAUSE_FAULTED_LINK,
    HOP_DELIVER,
    HOP_FLOOD,
    HOP_PUBLISH,
    HOP_RELAY,
    SpanRecorder,
    build_span_trees,
    trace_key,
)


def captured_telemetry():
    buf = io.StringIO()
    tel = obs.Telemetry(trace=obs.TraceWriter(buf, flush_every=1))
    return tel, buf


def events_of(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestSpanRecorder:
    def test_ids_are_dense_and_ordered(self):
        tel, buf = captured_telemetry()
        rec = SpanRecorder(tel, "e0", t=3.0)
        ids = [rec.root(HOP_PUBLISH, 7, topic=1)]
        ids.append(rec.hop(ids[0], HOP_FLOOD, 7, 8, 1))
        ids.append(rec.deliver(ids[1], 8, 1))
        ids.append(rec.failure(ids[0], HOP_FLOOD, 7, 9, 1, CAUSE_FAULTED_LINK))
        assert ids == [0, 1, 2, 3]
        evs = events_of(buf)
        assert [e["span"] for e in evs] == ids
        assert all(e["ev"] == "span" and e["trace"] == "e0" for e in evs)
        assert all(e["t"] == 3.0 for e in evs)

    def test_root_carries_header_fields(self):
        tel, buf = captured_telemetry()
        rec = SpanRecorder(tel, "e5", t=0.0)
        rec.root(HOP_PUBLISH, 3, topic=12, event=4, publisher=3, subs=9)
        (root,) = events_of(buf)
        assert root["topic"] == 12 and root["event"] == 4
        assert root["publisher"] == 3 and root["subs"] == 9
        assert root["hop"] == 0 and "parent" not in root

    def test_miss_event_shape(self):
        tel, buf = captured_telemetry()
        rec = SpanRecorder(tel, "e1", t=1.0)
        rec.miss(42, CAUSE_FAULTED_LINK, src=7, dst=42)
        rec.miss(43, "no_path")
        first, second = events_of(buf)
        assert first["ev"] == "miss" and first["addr"] == 42
        assert first["cause"] == CAUSE_FAULTED_LINK
        assert first["src"] == 7 and first["dst"] == 42
        assert "src" not in second and "dst" not in second

    def test_retries_field_only_when_nonzero(self):
        tel, buf = captured_telemetry()
        rec = SpanRecorder(tel, "e0", t=0.0)
        root = rec.root(HOP_PUBLISH, 0)
        rec.hop(root, HOP_FLOOD, 0, 1, 1)
        rec.hop(root, HOP_FLOOD, 0, 2, 1, retries=2)
        _, plain, retried = events_of(buf)
        assert "retries" not in plain
        assert retried["retries"] == 2


class TestBuildSpanTrees:
    def make_trace(self):
        tel, buf = captured_telemetry()
        rec = SpanRecorder(tel, "e0", t=0.0)
        root = rec.root(HOP_PUBLISH, 0, topic=5, event=1, publisher=0, subs=2)
        a = rec.hop(root, HOP_FLOOD, 0, 1, 1)
        rec.deliver(a, 1, 1)
        b = rec.hop(a, HOP_RELAY, 1, 9, 2)
        rec.failure(b, HOP_RELAY, 9, 2, 3, CAUSE_FAULTED_LINK)
        rec.miss(2, CAUSE_FAULTED_LINK, src=9, dst=2)
        return events_of(buf)

    def test_reconstruction(self):
        trees = build_span_trees(self.make_trace())
        assert set(trees) == {(None, "e0")}
        tree = trees[(None, "e0")]
        assert tree.root == 0
        assert tree.meta == {"topic": 5, "event": 1, "publisher": 0, "subs": 2}
        assert len(tree.spans) == 5
        assert [s.dst for s in tree.deliveries()] == [1]
        assert [s.status for s in tree.failures()] == [CAUSE_FAULTED_LINK]
        assert len(tree.misses) == 1 and tree.misses[0]["addr"] == 2
        assert tree.is_complete()

    def test_path_to_root(self):
        tree = build_span_trees(self.make_trace())[(None, "e0")]
        deliver = tree.deliveries()[0]
        path = tree.path_to_root(deliver.span)
        assert [s.kind for s in path] == [HOP_PUBLISH, HOP_FLOOD, HOP_DELIVER]
        assert path[0].span == tree.root

    def test_kind_counts_exclude_failures(self):
        tree = build_span_trees(self.make_trace())[(None, "e0")]
        counts = tree.kind_counts()
        assert counts[HOP_RELAY] == 1  # the failed relay span is excluded
        assert counts[HOP_FLOOD] == 1

    def test_missing_parent_is_incomplete(self):
        events = self.make_trace()
        events = [e for e in events if e.get("span") != 1]  # drop a mid span
        tree = build_span_trees(events)[(None, "e0")]
        assert not tree.is_complete()

    def test_trial_tags_separate_traces(self):
        events = self.make_trace()
        tagged = [dict(e, trial="vitis/0") for e in events]
        also = [dict(e, trial="vitis/1") for e in events]
        trees = build_span_trees(tagged + also)
        assert set(trees) == {("vitis/0", "e0"), ("vitis/1", "e0")}
        for tree in trees.values():
            assert tree.is_complete() and len(tree.spans) == 5

    def test_non_span_events_ignored(self):
        events = self.make_trace()
        events.insert(0, {"ev": "cycle", "cycle": 1})
        events.append({"ev": "delivery", "trace": "e0", "topic": 5})
        trees = build_span_trees(events)
        assert len(trees) == 1 and len(trees[(None, "e0")].spans) == 5

    def test_trace_key(self):
        assert trace_key({"trace": "e3"}) == (None, "e3")
        assert trace_key({"trace": "e3", "trial": "rvr/1.0"}) == ("rvr/1.0", "e3")

"""Tests for the metrics registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram(buckets=(1, 5, 10))
        for v in (0.5, 1, 3, 5, 7, 10, 100):
            h.observe(v)
        d = h.to_dict()
        # Cumulative: <=1 gets {0.5, 1}; <=5 adds {3, 5}; <=10 adds {7, 10};
        # 100 lands in the implicit +Inf slot (count only).
        assert d["buckets"] == {"1": 2, "5": 4, "10": 6}
        assert d["count"] == 7

    def test_stats(self):
        h = Histogram(buckets=(10,))
        for v in (2, 4, 6):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.min == 2.0
        assert h.max == 6.0
        assert h.mean() == 4.0

    def test_empty_mean_is_zero(self):
        assert Histogram().mean() == 0.0


class TestMetricsRegistry:
    def test_instruments_memoised_by_name_and_labels(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x", system="vitis") is r.counter("x", system="vitis")
        assert r.counter("x") is not r.counter("x", system="vitis")
        assert r.counter("x", a="1", b="2") is r.counter("x", b="2", a="1")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_len_counts_all_instruments(self):
        r = MetricsRegistry()
        r.counter("c")
        r.counter("c", system="rvr")
        r.gauge("g")
        r.histogram("h")
        assert len(r) == 4

    def test_to_dict_renders_label_keys(self):
        r = MetricsRegistry()
        r.counter("lookups_total", system="vitis").inc(3)
        r.gauge("live_nodes").set(42)
        r.histogram("hops", buckets=(1, 2)).observe(1)
        d = r.to_dict()
        assert d["counters"] == {"lookups_total{system=vitis}": 3.0}
        assert d["gauges"] == {"live_nodes": 42.0}
        assert d["histograms"]["hops"]["count"] == 1

    def test_to_dict_is_json_serialisable(self):
        import json

        r = MetricsRegistry()
        r.counter("c", k="v").inc()
        r.histogram("h").observe(7)
        json.dumps(r.to_dict())

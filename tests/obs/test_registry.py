"""Tests for the metrics registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram(buckets=(1, 5, 10))
        for v in (0.5, 1, 3, 5, 7, 10, 100):
            h.observe(v)
        d = h.to_dict()
        # Cumulative: <=1 gets {0.5, 1}; <=5 adds {3, 5}; <=10 adds {7, 10};
        # 100 lands in the implicit +Inf slot (count only).
        assert d["buckets"] == {"1": 2, "5": 4, "10": 6}
        assert d["count"] == 7

    def test_stats(self):
        h = Histogram(buckets=(10,))
        for v in (2, 4, 6):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.min == 2.0
        assert h.max == 6.0
        assert h.mean() == 4.0

    def test_empty_mean_is_zero(self):
        assert Histogram().mean() == 0.0


class TestMetricsRegistry:
    def test_instruments_memoised_by_name_and_labels(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x", system="vitis") is r.counter("x", system="vitis")
        assert r.counter("x") is not r.counter("x", system="vitis")
        assert r.counter("x", a="1", b="2") is r.counter("x", b="2", a="1")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_len_counts_all_instruments(self):
        r = MetricsRegistry()
        r.counter("c")
        r.counter("c", system="rvr")
        r.gauge("g")
        r.histogram("h")
        assert len(r) == 4

    def test_to_dict_renders_label_keys(self):
        r = MetricsRegistry()
        r.counter("lookups_total", system="vitis").inc(3)
        r.gauge("live_nodes").set(42)
        r.histogram("hops", buckets=(1, 2)).observe(1)
        d = r.to_dict()
        assert d["counters"] == {"lookups_total{system=vitis}": 3.0}
        assert d["gauges"] == {"live_nodes": 42.0}
        assert d["histograms"]["hops"]["count"] == 1

    def test_to_dict_is_json_serialisable(self):
        import json

        r = MetricsRegistry()
        r.counter("c", k="v").inc()
        r.histogram("h").observe(7)
        json.dumps(r.to_dict())


class TestQuantile:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram(buckets=(1, 5))
        assert h.quantile(0.5) is None
        assert h.to_dict()["p50"] is None

    def test_rejects_out_of_range(self):
        h = Histogram()
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_interpolates_within_buckets(self):
        h = Histogram(buckets=(10, 20, 30))
        for v in (2, 4, 6, 8, 12, 14, 22, 28):
            h.observe(v)
        # Half the mass sits at or below the first bucket boundary.
        assert h.quantile(0.5) <= 10.0
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max

    def test_clamped_to_observed_range(self):
        # Everything lands in one wide bucket: interpolation must not
        # report values outside [min, max].
        h = Histogram(buckets=(100,))
        h.observe(41)
        h.observe(43)
        for q in (0.5, 0.9, 0.99):
            assert 41.0 <= h.quantile(q) <= 43.0

    def test_to_dict_quantiles_ordered(self):
        h = Histogram(buckets=(1, 2, 4, 8, 16))
        for v in (1, 1, 2, 3, 5, 8, 13):
            h.observe(v)
        d = h.to_dict()
        assert d["p50"] <= d["p90"] <= d["p99"]


class TestDeltaSince:
    def test_first_delta_is_full_snapshot(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(7)
        r.histogram("h", buckets=(1, 2)).observe(2)
        delta, cursor = r.delta_since(None)
        m = MetricsRegistry()
        m.merge(delta)
        assert m.snapshot() == r.snapshot()
        assert cursor is not None

    def test_unchanged_registry_yields_none(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        _, cursor = r.delta_since(None)
        delta, cursor2 = r.delta_since(cursor)
        assert delta is None

    def test_delta_carries_only_changed_instruments(self):
        r = MetricsRegistry()
        r.counter("changed").inc()
        r.counter("frozen").inc()
        _, cursor = r.delta_since(None)
        r.counter("changed").inc(4)
        delta, _ = r.delta_since(cursor)
        names = [name for name, _key, _v in delta["counters"]]
        assert names == ["changed"]
        # Counters stream increments, not absolutes.
        assert delta["counters"][0][2] == 4.0

    def test_merged_deltas_equal_final_snapshot(self):
        # Integer observations so counter/sum folds are float-exact: the
        # stream-of-deltas must rebuild the registry bit for bit.
        import random

        rng = random.Random(42)
        r = MetricsRegistry()
        folded = MetricsRegistry()
        cursor = None
        for _round in range(20):
            for _ in range(rng.randrange(0, 8)):
                r.counter("sent", cls=rng.choice("ab")).inc(rng.randrange(1, 5))
                r.gauge("depth").set(rng.randrange(0, 50))
                r.histogram("hops", buckets=(1, 2, 4, 8)).observe(
                    rng.randrange(0, 12))
            delta, cursor = r.delta_since(cursor)
            if delta is not None:
                folded.merge(delta)
        assert folded.snapshot() == r.snapshot()

    def test_gauges_stream_current_value(self):
        r = MetricsRegistry()
        r.gauge("depth").set(10)
        _, cursor = r.delta_since(None)
        r.gauge("depth").set(3)
        delta, _ = r.delta_since(cursor)
        assert delta["gauges"] == [["depth", [], 3.0]]
        m = MetricsRegistry()
        m.gauge("depth").set(99)
        m.merge(delta)
        assert m.gauge("depth").value == 3.0

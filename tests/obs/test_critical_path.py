"""Tests for span-tree critical-path analysis (repro.obs.critical_path)."""

import math

from repro.obs.critical_path import (
    check_envelope,
    delivery_breakdown,
    event_path_stats,
    hop_kind_table,
    relay_hotspots,
)
from repro.obs.spans import build_span_trees


def span(trace, sid, kind, src, dst, hop, parent=None, **extra):
    e = {"ev": "span", "trace": trace, "span": sid, "kind": kind,
         "src": src, "dst": dst, "hop": hop}
    if parent is not None:
        e["parent"] = parent
    e.update(extra)
    return e


def two_branch_event():
    """publish → flood → deliver(hop 1), and
    publish → relay → rendezvous → flood → deliver(hop 3)."""
    return [
        span("e0", 0, "publish", 0, 0, 0, topic=3, event=0, publisher=0, subs=2),
        span("e0", 1, "flood", 0, 1, 1, parent=0),
        span("e0", 2, "deliver", 1, 1, 1, parent=1),
        span("e0", 3, "relay", 0, 9, 1, parent=0),
        span("e0", 4, "rendezvous", 9, 5, 2, parent=3),
        span("e0", 5, "flood", 5, 6, 3, parent=4),
        span("e0", 6, "deliver", 6, 6, 3, parent=5),
    ]


def tree_of(events):
    return next(iter(build_span_trees(events).values()))


class TestBreakdown:
    def test_delivery_breakdown_counts_kinds(self):
        tree = tree_of(two_branch_event())
        deep = [d for d in tree.deliveries() if d.hop == 3][0]
        bd = delivery_breakdown(tree, deep.span)
        assert bd.addr == 6 and bd.hops == 3
        assert (bd.flood, bd.relay, bd.rendezvous, bd.lookup) == (1, 1, 1, 0)
        assert bd.edges == 3

    def test_event_path_stats_picks_deepest(self):
        st = event_path_stats(tree_of(two_branch_event()))
        assert st.deliveries == 2
        assert sorted(st.delivery_hops) == [1, 3]
        assert st.critical is not None and st.critical.addr == 6
        assert st.flood_depth == 1
        assert st.routing_depth == 2  # relay + rendezvous on the deep branch

    def test_empty_tree(self):
        st = event_path_stats(tree_of([
            span("e0", 0, "publish", 0, 0, 0, subs=1),
        ]))
        assert st.deliveries == 0 and st.critical is None


class TestAggregates:
    def test_hop_kind_table(self):
        table = hop_kind_table([tree_of(two_branch_event())])
        assert table["flood"]["spans"] == 2
        assert table["relay"]["spans"] == 1
        assert table["rendezvous"]["spans"] == 1
        # Two delivery paths: flood counts 1 on each.
        assert table["flood"]["per_path_mean"] == 1.0
        assert table["relay"]["per_path_max"] == 1
        assert table["lookup"]["spans"] == 0

    def test_failed_spans_counted_separately(self):
        events = two_branch_event() + [
            span("e0", 7, "flood", 1, 2, 2, parent=1, status="faulted_link"),
        ]
        table = hop_kind_table([tree_of(events)])
        assert table["flood"]["spans"] == 2
        assert table["flood"]["failed"] == 1

    def test_relay_hotspots(self):
        trees = [tree_of(two_branch_event())]
        hot = relay_hotspots(trees)
        # relay span 0->9 counts for 0; rendezvous span 9->5 counts for 9.
        assert hot == [(0, 1), (9, 1)]

    def test_relay_hotspots_top_n(self):
        trees = [tree_of(two_branch_event())]
        assert len(relay_hotspots(trees, n=1)) == 1

    def test_relay_hotspots_ties_break_by_address(self):
        # One relay span forwarded by each of 9, 2 and 5 — all tied at 1.
        # The ordering must be by address, independent of span id / trace
        # insertion order, so --hotspots output is CI-fixture stable.
        events = [
            span("e0", 0, "publish", 0, 0, 0, subs=1),
            span("e0", 1, "relay", 9, 1, 1, parent=0),
            span("e0", 2, "relay", 2, 3, 1, parent=0),
            span("e0", 3, "relay", 5, 4, 1, parent=0),
        ]
        assert relay_hotspots([tree_of(events)]) == [(2, 1), (5, 1), (9, 1)]

        permuted = [
            span("e0", 0, "publish", 0, 0, 0, subs=1),
            span("e0", 1, "relay", 5, 4, 1, parent=0),
            span("e0", 2, "relay", 9, 1, 1, parent=0),
            span("e0", 3, "relay", 2, 3, 1, parent=0),
        ]
        assert relay_hotspots([tree_of(permuted)]) == \
            relay_hotspots([tree_of(events)])

    def test_relay_hotspots_render_is_fixture_stable(self):
        # The exact table trace-report prints for a tied trace — locked
        # down so CI can diff rendered hotspot output verbatim.
        from repro.experiments.reporting import format_table

        events = [
            span("e0", 0, "publish", 0, 0, 0, subs=1),
            span("e0", 1, "relay", 9, 1, 1, parent=0),
            span("e0", 2, "relay", 2, 3, 1, parent=0),
            span("e0", 3, "rendezvous", 2, 4, 2, parent=2),
        ]
        rows = [{"address": a, "relayed": c}
                for a, c in relay_hotspots([tree_of(events)])]
        text = format_table(rows, title="relay hotspots")
        assert text.splitlines() == [
            "relay hotspots",
            "address  relayed",
            "-------  -------",
            "2        2      ",
            "9        1      ",
        ]


class TestEnvelope:
    def test_within_bound(self):
        events = two_branch_event() + [
            {"ev": "gossip_exchange", "cycle": 1, "live": 64},
        ]
        env = check_envelope(events, build_span_trees(events))
        assert env is not None
        assert env.n_live == 64 and env.d == 1
        assert env.bound == math.log2(64) ** 2 + 1 + env.slack
        assert env.p99_hops == 3.0 and env.max_hops == 3
        assert env.ok

    def test_exceeded(self):
        chain = [span("e0", 0, "publish", 0, 0, 0, subs=1)]
        for i in range(1, 40):
            chain.append(span("e0", i, "relay", i - 1, i, i, parent=i - 1))
        chain.append(span("e0", 40, "deliver", 39, 39, 39, parent=39))
        chain.append({"ev": "election", "round": 1, "live": 4})
        env = check_envelope(chain, build_span_trees(chain), slack=0.0)
        assert env is not None
        assert not env.ok
        assert env.p99_hops == 39.0 and env.bound == 4.0  # log2(4)^2 + d=0

    def test_none_without_population_records(self):
        events = two_branch_event()
        assert check_envelope(events, build_span_trees(events)) is None

    def test_none_without_deliveries(self):
        events = [
            span("e0", 0, "publish", 0, 0, 0, subs=0),
            {"ev": "gossip_exchange", "cycle": 0, "live": 10},
        ]
        assert check_envelope(events, build_span_trees(events)) is None

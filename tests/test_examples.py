"""Smoke checks for the example scripts.

Each example is importable (no side effects at import time thanks to the
``__main__`` guards) and exposes a ``main`` callable.  Full executions
are exercised manually / in CI shells — they are demonstrations, not
fixtures — but the importability check catches API drift the moment a
public symbol an example uses changes.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"


def test_examples_exist():
    assert len(EXAMPLES) >= 5

"""Tests for run provenance (repro.provenance)."""

import re

from repro.provenance import (
    code_fingerprint,
    environment,
    git_sha,
    provenance,
    repo_root,
)


class TestCodeFingerprint:
    def test_is_hex_sha256(self):
        fp = code_fingerprint()
        assert re.fullmatch(r"[0-9a-f]{64}", fp)

    def test_memoised(self):
        assert code_fingerprint() is code_fingerprint()


class TestEnvironment:
    def test_has_interpreter_and_machine_facts(self):
        env = environment()
        assert {"repro_version", "python", "implementation",
                "platform", "cpu_count"} <= set(env)
        assert env["cpu_count"] >= 1

    def test_repro_version_matches_package(self):
        from repro import __version__

        assert environment()["repro_version"] == __version__


class TestProvenance:
    def test_full_record(self):
        record = provenance()
        assert record["code_hash"] == code_fingerprint()
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", record["timestamp"]
        )
        assert isinstance(record["argv"], list)
        assert "python" in record and "cpu_count" in record

    def test_git_facts_consistent(self):
        # In a checkout both are real; outside, sha is None and root is
        # the cwd — either way the pair must agree with itself.
        sha = git_sha()
        root = repo_root()
        if sha is not None:
            assert re.fullmatch(r"[0-9a-f]{40}", sha)
            assert (root / ".git").exists()
        assert root.is_dir()

"""Property-based tests for CompositeFault.

The composition laws the healing logic relies on: a composite's answers
are order-invariant over its members (for deterministic members — the
stochastic ones consume a shared RNG stream, where order *is* the
semantics), and every drop is attributed to exactly one member, so the
composite's ``injected`` is always the sum of its members' counts.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CompositeFault, MessageLoss, Partition, SlowLinks

addresses = st.integers(min_value=0, max_value=19)

#: Recipes for deterministic member models.  Every entry builds a *fresh*
#: instance per call so each permutation starts with zeroed counters;
#: MessageLoss gets its own RNG per instance (rate 0 never draws, rate 1
#: always drops — both order-independent).
_MEMBER_RECIPES = [
    lambda: Partition(([0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
                       [10, 11, 12, 13, 14, 15, 16, 17, 18, 19])),
    lambda: Partition(([0, 2, 4, 6, 8], [1, 3, 5, 7, 9]),
                      start=1.0, heal_at=5.0),
    lambda: SlowLinks(extra=0.25, slow_fraction=0.5),
    lambda: SlowLinks(extra=2.0, slow_fraction=1.0, salt=7),
    lambda: SlowLinks(extra=0.5, slow_fraction=0.0),
    lambda: MessageLoss(0.0, random.Random(0)),
    lambda: MessageLoss(1.0, random.Random(0)),
]

member_sets = st.lists(
    st.sampled_from(range(len(_MEMBER_RECIPES))), min_size=1, max_size=4
)
queries = st.lists(
    st.tuples(addresses, addresses,
              st.sampled_from(["notify", "lookup", "heartbeat"]),
              st.sampled_from([0.0, 1.0, 2.0, 4.5, 10.0])),
    min_size=1, max_size=30,
)
permutation_seeds = st.integers(min_value=0, max_value=999)


def _composite(indices, order_seed=None):
    members = [_MEMBER_RECIPES[i]() for i in indices]
    if order_seed is not None:
        random.Random(order_seed).shuffle(members)
    return CompositeFault(members)


class TestOrderInvariance:
    @given(member_sets, queries, permutation_seeds)
    @settings(max_examples=80)
    def test_drop_sequence_is_permutation_invariant(self, idx, qs, pseed):
        a, b = _composite(idx), _composite(idx, order_seed=pseed)
        drops_a = [a.drop(s, d, k, t) for s, d, k, t in qs]
        drops_b = [b.drop(s, d, k, t) for s, d, k, t in qs]
        assert drops_a == drops_b

    @given(member_sets, queries, permutation_seeds)
    @settings(max_examples=80)
    def test_severed_and_delay_are_permutation_invariant(self, idx, qs, pseed):
        a, b = _composite(idx), _composite(idx, order_seed=pseed)
        for s, d, k, t in qs:
            assert a.severed(s, d, t) == b.severed(s, d, t)
            assert a.extra_delay(s, d, t) == b.extra_delay(s, d, t)


class TestInjectedAccounting:
    @given(member_sets, queries)
    @settings(max_examples=80)
    def test_injected_equals_true_drops_equals_member_sum(self, idx, qs):
        c = _composite(idx)
        true_drops = sum(c.drop(s, d, k, t) for s, d, k, t in qs)
        assert c.injected == true_drops
        assert c.injected == sum(m.injected for m in c.models)

    @given(member_sets, queries)
    @settings(max_examples=80)
    def test_each_drop_attributed_to_exactly_one_member(self, idx, qs):
        """The short-circuit contract: a claimed transmission charges one
        member only, so per-member counts partition the total."""
        c = _composite(idx)
        before = [m.injected for m in c.models]
        for s, d, k, t in qs:
            claimed = c.drop(s, d, k, t)
            after = [m.injected for m in c.models]
            bumps = sum(a - b for a, b in zip(after, before))
            assert bumps == (1 if claimed else 0)
            before = after


class TestCompositionSemantics:
    @given(member_sets, queries)
    @settings(max_examples=60)
    def test_severed_is_the_disjunction_of_members(self, idx, qs):
        c = _composite(idx)
        singles = [CompositeFault([_MEMBER_RECIPES[i]()]) for i in idx]
        for s, d, k, t in qs:
            assert c.severed(s, d, t) == any(
                m.severed(s, d, t) for m in singles
            )

    @given(member_sets, queries)
    @settings(max_examples=60)
    def test_delay_is_the_sum_of_members(self, idx, qs):
        c = _composite(idx)
        for s, d, k, t in qs:
            expected = sum(_MEMBER_RECIPES[i]().extra_delay(s, d, t)
                           for i in idx)
            assert c.extra_delay(s, d, t) == expected

    @given(queries)
    @settings(max_examples=40)
    def test_slow_links_never_claim_a_drop(self, qs):
        c = CompositeFault([SlowLinks(extra=9.0, slow_fraction=1.0)])
        assert not any(c.drop(s, d, k, t) for s, d, k, t in qs)
        assert c.injected == 0

"""Property-based tests for the Eq. 1 utility function."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import NodeProfile
from repro.core.utility import PublicationRates, UtilityFunction

N_TOPICS = 30
topic_sets = st.frozensets(st.integers(min_value=0, max_value=N_TOPICS - 1), max_size=15)
rate_arrays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=N_TOPICS,
    max_size=N_TOPICS,
)


def prof(addr, subs):
    return NodeProfile(addr, addr, subs)


class TestJaccardProperties:
    @given(topic_sets, topic_sets)
    def test_range(self, a, b):
        u = UtilityFunction()(prof(0, a), prof(1, b))
        assert 0.0 <= u <= 1.0

    @given(topic_sets, topic_sets)
    def test_symmetry(self, a, b):
        f = UtilityFunction()
        assert f(prof(0, a), prof(1, b)) == f(prof(1, b), prof(0, a))

    @given(topic_sets)
    def test_identical_sets(self, a):
        expected = 1.0 if a else 0.0
        assert UtilityFunction()(prof(0, a), prof(1, a)) == expected

    @given(topic_sets, topic_sets)
    def test_matches_direct_jaccard(self, a, b):
        u = UtilityFunction()(prof(0, a), prof(1, b))
        union = len(a | b)
        expected = len(a & b) / union if union else 0.0
        assert u == expected

    @given(topic_sets, topic_sets)
    def test_zero_iff_disjoint(self, a, b):
        u = UtilityFunction()(prof(0, a), prof(1, b))
        assert (u == 0.0) == (not (a & b) or not (a | b))


class TestRateWeightedProperties:
    @given(topic_sets, topic_sets, rate_arrays)
    @settings(max_examples=80)
    def test_range(self, a, b, rates):
        f = UtilityFunction(PublicationRates(np.array(rates)))
        u = f(prof(0, a), prof(1, b))
        assert 0.0 <= u <= 1.0 + 1e-9

    @given(topic_sets, topic_sets, rate_arrays)
    @settings(max_examples=80)
    def test_symmetry(self, a, b, rates):
        f = UtilityFunction(PublicationRates(np.array(rates)))
        assert f(prof(0, a), prof(1, b)) == f(prof(1, b), prof(0, a))

    @given(topic_sets, topic_sets, rate_arrays)
    @settings(max_examples=80)
    def test_matches_direct_formula(self, a, b, rates):
        r = np.array(rates)
        f = UtilityFunction(PublicationRates(r))
        u = f(prof(0, a), prof(1, b))
        inter = sum(r[t] for t in a & b)
        union = sum(r[t] for t in a | b)
        expected = inter / union if union > 0 else 0.0
        assert abs(u - expected) < 1e-9

    @given(topic_sets, topic_sets, st.floats(min_value=0.1, max_value=50))
    def test_uniform_rates_reduce_to_jaccard(self, a, b, rate):
        f = UtilityFunction(PublicationRates(np.full(N_TOPICS, rate)))
        g = UtilityFunction()
        assert abs(f(prof(0, a), prof(1, b)) - g(prof(0, a), prof(1, b))) < 1e-9

    @given(topic_sets, topic_sets, rate_arrays)
    @settings(max_examples=50)
    def test_cache_transparent(self, a, b, rates):
        f = UtilityFunction(PublicationRates(np.array(rates)))
        first = f(prof(0, a), prof(1, b))
        second = f(prof(0, a), prof(1, b))
        assert first == second

"""Property-based tests for greedy routing and ring helpers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identifiers import IdSpace
from repro.gossip.view import Descriptor
from repro.smallworld.ring import find_predecessor, find_successor, ring_edges
from repro.smallworld.routing import greedy_route

SPACE = IdSpace(bits=32)

populations = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=2, max_size=60, unique=True
)


def overlay(addresses, extra_links=2, seed=0):
    """A correct ring plus random long links over hashed ids."""
    rng = random.Random(seed)
    ids = {a: SPACE.hash_key(("n", a)) for a in addresses}
    order = sorted(ids, key=lambda a: ids[a])
    n = len(order)
    neighbors = {a: set() for a in ids}
    for i, a in enumerate(order):
        neighbors[a].update({order[(i + 1) % n], order[(i - 1) % n]})
    addr_list = list(addresses)
    for a in ids:
        for _ in range(extra_links):
            b = rng.choice(addr_list)
            if b != a:
                neighbors[a].add(b)
    return ids, neighbors


class TestGreedyRouting:
    @given(populations, st.integers(min_value=0, max_value=SPACE.size - 1))
    @settings(max_examples=60, deadline=None)
    def test_terminates_at_global_minimum(self, addrs, target):
        ids, neighbors = overlay(addrs)
        start = addrs[0]
        result = greedy_route(
            SPACE,
            target,
            start,
            ids[start],
            neighbors_of=lambda a: [(b, ids[b]) for b in neighbors[a]],
            is_alive=lambda a: True,
        )
        assert result.success
        truth = min(ids.values(), key=lambda i: SPACE.distance(i, target))
        assert ids[result.rendezvous] == truth

    @given(populations, st.integers(min_value=0, max_value=SPACE.size - 1))
    @settings(max_examples=40, deadline=None)
    def test_lookup_consistency(self, addrs, target):
        """Any two starting points reach the same rendezvous."""
        ids, neighbors = overlay(addrs)
        ends = set()
        for start in addrs[:4]:
            r = greedy_route(
                SPACE,
                target,
                start,
                ids[start],
                neighbors_of=lambda a: [(b, ids[b]) for b in neighbors[a]],
                is_alive=lambda a: True,
            )
            ends.add(r.rendezvous)
        assert len(ends) == 1

    @given(populations, st.integers(min_value=0, max_value=SPACE.size - 1))
    @settings(max_examples=40, deadline=None)
    def test_distances_strictly_decrease(self, addrs, target):
        ids, neighbors = overlay(addrs)
        start = addrs[0]
        r = greedy_route(
            SPACE,
            target,
            start,
            ids[start],
            neighbors_of=lambda a: [(b, ids[b]) for b in neighbors[a]],
            is_alive=lambda a: True,
        )
        dists = [SPACE.distance(ids[a], target) for a in r.path]
        assert all(x > y for x, y in zip(dists, dists[1:]))


class TestRingHelpers:
    @given(populations)
    @settings(max_examples=60)
    def test_ring_edges_form_one_cycle(self, addrs):
        ids = {a: SPACE.hash_key(("n", a)) for a in addrs}
        edges = dict(ring_edges(ids))
        # Follow successors: must visit every node exactly once.
        start = addrs[0]
        seen = [start]
        cur = edges[start]
        while cur != start:
            seen.append(cur)
            cur = edges[cur]
        assert sorted(seen) == sorted(addrs)

    @given(populations)
    @settings(max_examples=60)
    def test_successor_matches_ring_truth(self, addrs):
        ids = {a: SPACE.hash_key(("n", a)) for a in addrs}
        truth = dict(ring_edges(ids))
        for a in addrs:
            cands = [Descriptor(b, ids[b]) for b in addrs if b != a]
            succ = find_successor(SPACE, ids[a], cands)
            assert succ.address == truth[a]

    @given(populations)
    @settings(max_examples=60)
    def test_predecessor_inverts_successor(self, addrs):
        ids = {a: SPACE.hash_key(("n", a)) for a in addrs}
        truth = dict(ring_edges(ids))
        inverse = {v: k for k, v in truth.items()}
        for a in addrs:
            cands = [Descriptor(b, ids[b]) for b in addrs if b != a]
            pred = find_predecessor(SPACE, ids[a], cands)
            assert pred.address == inverse[a]

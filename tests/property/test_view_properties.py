"""Property-based tests for partial views."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.view import Descriptor, PartialView

descriptor = st.builds(
    Descriptor,
    address=st.integers(min_value=0, max_value=50),
    node_id=st.integers(min_value=0, max_value=1 << 32),
    age=st.integers(min_value=0, max_value=30),
)
descriptor_lists = st.lists(descriptor, max_size=40)


class TestInvariants:
    @given(st.integers(min_value=1, max_value=10), descriptor_lists)
    def test_unique_per_address(self, size, descs):
        v = PartialView(size, descs)
        addrs = [d.address for d in v]
        assert len(addrs) == len(set(addrs))

    @given(st.integers(min_value=1, max_value=10), descriptor_lists)
    def test_trim_respects_bound(self, size, descs):
        v = PartialView(size, descs)
        v.trim()
        assert len(v) <= size

    @given(st.integers(min_value=1, max_value=10), descriptor_lists, st.integers())
    def test_trim_with_rng_respects_bound(self, size, descs, seed):
        v = PartialView(size, descs)
        v.trim(random.Random(seed))
        assert len(v) <= size

    @given(descriptor_lists)
    def test_insert_keeps_minimum_age(self, descs):
        v = PartialView(100)
        for d in descs:
            v.insert(d)
        by_addr = {}
        for d in descs:
            by_addr[d.address] = min(by_addr.get(d.address, 1 << 60), d.age)
        for d in v:
            assert d.age == by_addr[d.address]

    @given(descriptor_lists)
    def test_trim_keeps_freshest(self, descs):
        v = PartialView(5, descs)
        before = sorted(d.age for d in v)
        v.trim()
        after = sorted(d.age for d in v)
        # The kept ages are the smallest |after| of the original multiset.
        assert after == before[: len(after)]

    @given(descriptor_lists, st.integers(min_value=0, max_value=40))
    def test_drop_older_than(self, descs, cutoff):
        v = PartialView(100, descs)
        v.drop_older_than(cutoff)
        assert all(d.age <= cutoff for d in v)

    @given(descriptor_lists, st.integers(min_value=1, max_value=5))
    def test_age_all_uniform_shift(self, descs, by):
        v = PartialView(100, descs)
        before = {d.address: d.age for d in v}
        v.age_all(by)
        assert all(d.age == before[d.address] + by for d in v)


class TestSampling:
    @given(descriptor_lists, st.integers(min_value=0, max_value=20), st.integers())
    @settings(max_examples=60)
    def test_sample_is_unique_subset(self, descs, n, seed):
        v = PartialView(100, descs)
        s = v.sample(n, random.Random(seed))
        assert len(s) == min(n, len(v))
        addrs = [d.address for d in s]
        assert len(addrs) == len(set(addrs))
        assert all(a in v for a in addrs)

    @given(descriptor_lists)
    def test_oldest_is_max_age(self, descs):
        v = PartialView(100, descs)
        oldest = v.oldest_descriptor()
        if oldest is None:
            assert len(v) == 0
        else:
            assert oldest.age == max(d.age for d in v)

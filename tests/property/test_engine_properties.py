"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=0,
    max_size=40,
)


class TestEventOrdering:
    @given(delays)
    def test_events_fire_in_time_order(self, ds):
        e = Engine()
        fired = []
        for d in ds:
            e.schedule(d, lambda d=d: fired.append(e.now))
        e.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)

    @given(delays)
    def test_clock_monotone(self, ds):
        e = Engine()
        stamps = []
        for d in ds:
            e.schedule(d, lambda: stamps.append(e.now))
        last = -1.0
        while e.step():
            assert e.now >= last
            last = e.now

    @given(delays, st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
    def test_run_until_horizon_respected(self, ds, horizon):
        e = Engine()
        fired = []
        for d in ds:
            e.schedule(d, lambda d=d: fired.append(d))
        e.run(until=horizon)
        assert all(d <= horizon for d in fired)
        assert e.now >= min([horizon] + [d for d in ds if d <= horizon] or [0])

    @given(delays)
    def test_split_run_equals_full_run(self, ds):
        def run_split(split_at):
            e = Engine()
            fired = []
            for d in ds:
                e.schedule(d, lambda d=d: fired.append(d))
            e.run(until=split_at)
            e.run()
            return fired

        e = Engine()
        fired_full = []
        for d in ds:
            e.schedule(d, lambda d=d: fired_full.append(d))
        e.run()
        assert run_split(500.0) == fired_full

    @given(delays, st.integers(min_value=0, max_value=40))
    @settings(max_examples=50)
    def test_max_events_is_prefix(self, ds, k):
        e1, e2 = Engine(), Engine()
        f1, f2 = [], []
        for d in ds:
            e1.schedule(d, lambda d=d: f1.append(d))
            e2.schedule(d, lambda d=d: f2.append(d))
        e1.run()
        e2.run(max_events=k)
        assert f2 == f1[:k]

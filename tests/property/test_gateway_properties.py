"""Property-based tests for the Alg. 5 gateway election.

Hypothesis generates arbitrary cluster graphs (random node ids, random
edges, random topic hash, random depth); the election, run to its fixed
point, must satisfy the paper's structural guarantees on *every* input:

1. every connected component (cluster) contains at least one gateway;
2. every node's proposal names a gateway in its own component;
3. every node is within ``d`` hops of its proposed gateway (the proposal
   hop counter respects the bound);
4. the election is stable: one more round changes nothing.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gateway import GatewayState, elect_round
from repro.core.identifiers import IdSpace
from repro.core.routing_table import LinkKind, RoutingTable
from repro.gossip.view import Descriptor

SPACE = IdSpace(bits=16)
TOPIC = 0


@st.composite
def cluster_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=SPACE.size - 1),
            min_size=n, max_size=n, unique=True,
        )
    )
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n, unique=True)) if possible else []
    topic_hash = draw(st.integers(min_value=0, max_value=SPACE.size - 1))
    depth = draw(st.integers(min_value=1, max_value=6))
    return dict(enumerate(ids)), edges, topic_hash, depth


class Election:
    def __init__(self, ids, edges, topic_hash, depth):
        self.ids = ids
        self.topic_hash = topic_hash
        self.depth = depth
        self.states = {a: GatewayState(a, node_id) for a, node_id in ids.items()}
        self.adj = {a: set() for a in ids}
        for u, v in edges:
            self.adj[u].add(v)
            self.adj[v].add(u)
        self.rts = {}
        for a, neigh in self.adj.items():
            rt = RoutingTable(a, max(1, len(neigh)))
            rt.replace([(Descriptor(b, ids[b]), LinkKind.FRIEND) for b in sorted(neigh)])
            self.rts[a] = rt

    def round(self):
        results = {
            a: elect_round(
                SPACE,
                self.states[a],
                frozenset({TOPIC}),
                self.rts[a],
                neighbor_subscriptions=lambda _: frozenset({TOPIC}),
                neighbor_proposal=lambda nb, t: self.states[nb].get(t),
                topic_ids=lambda t: self.topic_hash,
                depth=self.depth,
            )
            for a in self.ids
        }
        changed = any(self.states[a].proposals != props for a, props in results.items())
        for a, props in results.items():
            self.states[a].proposals = props
        return changed

    def run_to_fixed_point(self, cap=40):
        for _ in range(cap):
            if not self.round():
                return True
        return False

    def components(self):
        remaining = set(self.ids)
        comps = []
        while remaining:
            start = remaining.pop()
            comp = {start}
            q = deque([start])
            while q:
                u = q.popleft()
                for v in self.adj[u]:
                    if v in remaining:
                        remaining.remove(v)
                        comp.add(v)
                        q.append(v)
            comps.append(comp)
        return comps

    def hops_to(self, src, dst):
        dist = {src: 0}
        q = deque([src])
        while q:
            u = q.popleft()
            if u == dst:
                return dist[u]
            for v in self.adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    q.append(v)
        return None


class TestElectionInvariants:
    @given(cluster_graphs())
    @settings(max_examples=80, deadline=None)
    def test_every_component_has_a_gateway(self, graph):
        e = Election(*graph)
        e.run_to_fixed_point()
        gateways = {
            a for a in e.ids if e.states[a].get(TOPIC).gw_addr == a
        }
        for comp in e.components():
            assert gateways & comp, f"component {comp} has no gateway"

    @given(cluster_graphs())
    @settings(max_examples=80, deadline=None)
    def test_proposed_gateway_is_in_own_component(self, graph):
        e = Election(*graph)
        e.run_to_fixed_point()
        for comp in e.components():
            for a in comp:
                assert e.states[a].get(TOPIC).gw_addr in comp

    @given(cluster_graphs())
    @settings(max_examples=80, deadline=None)
    def test_depth_bound_respected(self, graph):
        e = Election(*graph)
        e.run_to_fixed_point()
        for a in e.ids:
            prop = e.states[a].get(TOPIC)
            assert prop.hops < e.depth
            real = e.hops_to(a, prop.gw_addr)
            assert real is not None and real <= prop.hops

    @given(cluster_graphs())
    @settings(max_examples=60, deadline=None)
    def test_election_reaches_a_fixed_point(self, graph):
        e = Election(*graph)
        assert e.run_to_fixed_point(cap=60), "election oscillated"

    @given(cluster_graphs())
    @settings(max_examples=60, deadline=None)
    def test_gateway_never_worse_than_self(self, graph):
        """Adopting a proposal must never name a gateway farther (in id
        space) from hash(t) than the node itself."""
        e = Election(*graph)
        e.run_to_fixed_point()
        for a, node_id in e.ids.items():
            prop = e.states[a].get(TOPIC)
            own = SPACE.distance(node_id, e.topic_hash)
            got = SPACE.distance(prop.gw_id, e.topic_hash)
            assert got <= own

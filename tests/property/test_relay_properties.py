"""Property-based tests for relay-path installation.

Hypothesis generates arbitrary batches of greedy-lookup paths (as the
gateway lookups of one topic would produce: distinct starting points, a
shared suffix structure arising from grafts) and asserts the structural
invariants of the installed relay state:

1. at most one parent per (node, topic);
2. parent/child pointers are mutually consistent;
3. the installed edges form a forest (no cycles);
4. every installed node reaches a root by following parents;
5. re-installing the same paths is idempotent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relay import RelayStats, RelayTable, install_path
from repro.smallworld.routing import LookupResult

N_NODES = 12
TOPIC = 1


@st.composite
def path_batches(draw):
    """Batches of greedy-lookup-shaped paths over a small universe.

    Real relay paths are greedy routes toward one target id: every hop
    *strictly decreases* the (objective) circular distance to the target,
    so any two paths of the same topic are strictly decreasing in the
    same node ordering — that precondition is what makes cross-path
    cycles impossible, and the generator encodes it by drawing paths that
    descend a common random rank permutation.  Overlaps between paths
    remain arbitrary (the grafting cases).
    """
    ranks = draw(st.permutations(range(N_NODES)))
    rank_of = {node: r for node, r in zip(range(N_NODES), ranks)}
    n_paths = draw(st.integers(min_value=1, max_value=6))
    paths = []
    for _ in range(n_paths):
        nodes = draw(
            st.lists(
                st.integers(min_value=0, max_value=N_NODES - 1),
                min_size=1,
                max_size=N_NODES,
                unique=True,
            )
        )
        # Descending distance == descending rank toward the target.
        paths.append(sorted(nodes, key=lambda n: -rank_of[n]))
    return paths


def install_all(paths):
    tables = {a: RelayTable(a) for a in range(N_NODES)}
    stats = RelayStats()
    for p in paths:
        install_path(TOPIC, LookupResult(target_id=0, path=list(p), success=True),
                      tables, stats)
    return tables, stats


class TestRelayInvariants:
    @given(path_batches())
    @settings(max_examples=100)
    def test_parent_child_consistency(self, paths):
        tables, _ = install_all(paths)
        for a, t in tables.items():
            parent = t.parent.get(TOPIC)
            if parent is not None:
                assert a in tables[parent].children.get(TOPIC, set())
            for child in t.children.get(TOPIC, set()):
                assert tables[child].parent.get(TOPIC) == a

    @given(path_batches())
    @settings(max_examples=100)
    def test_no_cycles(self, paths):
        tables, _ = install_all(paths)
        for a in range(N_NODES):
            seen = set()
            cur = a
            while TOPIC in tables[cur].parent:
                assert cur not in seen, f"cycle through {cur}"
                seen.add(cur)
                cur = tables[cur].parent[TOPIC]

    @given(path_batches())
    @settings(max_examples=100)
    def test_single_parent(self, paths):
        tables, _ = install_all(paths)
        for t in tables.values():
            # dict structure enforces this, but drop_topic/add interplay
            # could break it; assert the semantic version: a node is a
            # child of at most one other node.
            parents_claiming = [
                a for a, other in tables.items()
                if t.address in other.children.get(TOPIC, set())
            ]
            assert len(parents_claiming) <= 1

    @given(path_batches())
    @settings(max_examples=60)
    def test_reinstall_idempotent(self, paths):
        tables1, _ = install_all(paths)
        tables2, _ = install_all(paths + paths)
        for a in range(N_NODES):
            assert tables1[a].parent == tables2[a].parent
            assert tables1[a].children == tables2[a].children

    @given(path_batches())
    @settings(max_examples=60)
    def test_stats_counts(self, paths):
        _, stats = install_all(paths)
        assert stats.paths_installed == len(paths)
        assert stats.total_path_hops == sum(len(p) - 1 for p in paths)

    @given(path_batches())
    @settings(max_examples=60)
    def test_tree_neighbors_symmetric(self, paths):
        tables, _ = install_all(paths)
        for a, t in tables.items():
            for b in t.tree_neighbors(TOPIC):
                assert a in tables[b].tree_neighbors(TOPIC)

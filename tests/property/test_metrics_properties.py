"""Property-based tests for metric aggregation."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import DisseminationRecord, MetricsCollector, restrict_record

addresses = st.integers(min_value=0, max_value=40)


@st.composite
def records(draw):
    subscribers = draw(st.frozensets(addresses, max_size=15))
    delivered = draw(st.lists(st.sampled_from(sorted(subscribers)), unique=True))\
        if subscribers else []
    hops = {a: draw(st.integers(min_value=1, max_value=12)) for a in delivered}
    interested = Counter(dict(draw(st.dictionaries(addresses, st.integers(1, 5), max_size=10))))
    relay = Counter(dict(draw(st.dictionaries(addresses, st.integers(1, 5), max_size=10))))
    return DisseminationRecord(
        topic=draw(st.integers(0, 100)),
        event_id=draw(st.integers(0, 100)),
        publisher=draw(addresses),
        subscribers=subscribers,
        delivered_hops=hops,
        interested_msgs=interested,
        relay_msgs=relay,
    )


class TestAggregation:
    @given(st.lists(records(), max_size=15))
    @settings(max_examples=60)
    def test_hit_ratio_in_unit_interval(self, recs):
        c = MetricsCollector()
        c.extend(recs)
        assert 0.0 <= c.hit_ratio() <= 1.0

    @given(st.lists(records(), max_size=15))
    @settings(max_examples=60)
    def test_overhead_in_percent_range(self, recs):
        c = MetricsCollector()
        c.extend(recs)
        assert 0.0 <= c.traffic_overhead_pct() <= 100.0

    @given(st.lists(records(), max_size=15))
    @settings(max_examples=60)
    def test_mean_delay_bounded_by_max(self, recs):
        c = MetricsCollector()
        c.extend(recs)
        assert c.mean_delay() <= c.max_delay()

    @given(st.lists(records(), max_size=15))
    @settings(max_examples=60)
    def test_histogram_is_distribution(self, recs):
        c = MetricsCollector()
        c.extend(recs)
        _, fractions = c.overhead_histogram()
        total = fractions.sum()
        assert total == 0.0 or abs(total - 1.0) < 1e-9

    @given(st.lists(records(), max_size=10))
    @settings(max_examples=40)
    def test_order_independence(self, recs):
        a, b = MetricsCollector(), MetricsCollector()
        a.extend(recs)
        b.extend(list(reversed(recs)))
        assert a.summary() == b.summary()


class TestRestriction:
    @given(records(), st.frozensets(addresses, max_size=20))
    @settings(max_examples=60)
    def test_restriction_never_lowers_per_event_quality(self, rec, keep):
        out = restrict_record(rec, keep)
        assert out.subscribers <= rec.subscribers
        assert set(out.delivered_hops) <= set(rec.delivered_hops)
        assert out.total_messages == rec.total_messages

    @given(records())
    @settings(max_examples=60)
    def test_full_restriction_is_identity(self, rec):
        out = restrict_record(rec, rec.subscribers)
        assert out.subscribers == rec.subscribers
        assert out.delivered_hops == rec.delivered_hops

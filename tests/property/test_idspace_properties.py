"""Property-based tests for the circular id space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identifiers import IdSpace

SPACE = IdSpace(bits=32)
ids = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestDistanceMetric:
    @given(ids, ids)
    def test_symmetry(self, a, b):
        assert SPACE.distance(a, b) == SPACE.distance(b, a)

    @given(ids)
    def test_identity(self, a):
        assert SPACE.distance(a, a) == 0

    @given(ids, ids)
    def test_bounded_by_half(self, a, b):
        assert 0 <= SPACE.distance(a, b) <= SPACE.size // 2

    @given(ids, ids, ids)
    def test_triangle_inequality(self, a, b, c):
        assert SPACE.distance(a, c) <= SPACE.distance(a, b) + SPACE.distance(b, c)

    @given(ids, ids, ids)
    def test_translation_invariance(self, a, b, k):
        assert SPACE.distance(a, b) == SPACE.distance(
            SPACE.offset(a, k), SPACE.offset(b, k)
        )


class TestClockwise:
    @given(ids, ids)
    def test_clockwise_splits_ring(self, a, b):
        cw = SPACE.clockwise(a, b)
        ccw = SPACE.clockwise(b, a)
        if a == b:
            assert cw == ccw == 0
        else:
            assert cw + ccw == SPACE.size

    @given(ids, ids)
    def test_distance_is_min_of_arcs(self, a, b):
        cw = SPACE.clockwise(a, b)
        assert SPACE.distance(a, b) == min(cw, SPACE.size - cw)

    @given(ids, st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_offset_round_trip(self, a, delta):
        assert SPACE.offset(SPACE.offset(a, delta), -delta) == a


class TestHashing:
    @given(st.text(max_size=40))
    def test_hash_in_range(self, key):
        assert 0 <= SPACE.hash_key(key) < SPACE.size

    @given(st.text(max_size=40))
    def test_hash_stable(self, key):
        assert SPACE.hash_key(key) == IdSpace(bits=32).hash_key(key)


class TestSelection:
    @given(ids, st.lists(ids, min_size=1, max_size=30))
    def test_closest_is_argmin(self, target, pool):
        best = SPACE.closest(target, pool)
        assert SPACE.distance(best, target) == min(
            SPACE.distance(i, target) for i in pool
        )

    @given(ids, st.lists(ids, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_rank_sorted(self, target, pool):
        ranked = SPACE.rank_by_distance(target, pool)
        dists = [SPACE.distance(i, target) for i in ranked]
        assert dists == sorted(dists)
        assert sorted(ranked) == sorted(pool)

"""Tests for the message-driven deployment mode.

The deployed system must converge to the same overlay invariants as the
cycle-driven protocol — ring correctness, full delivery, clusters with
gateways — while exchanging *only* messages (with latency), and must pay
a bounded, explainable overhead premium for living maintenance.
"""

import pytest

from repro.core.config import VitisConfig
from repro.core.deployment import DeployedVitis
from repro.core.protocol import VitisProtocol
from repro.experiments.runner import measure
from repro.sim.network import UniformLatency
from repro.smallworld.ring import is_ring_converged
from repro.workloads.subscriptions import bucket_subscriptions


def small_subs(seed=2):
    return bucket_subscriptions(
        80, 100, n_buckets=10, buckets_per_node=2, topics_per_bucket=5, seed=seed
    )


@pytest.fixture(scope="module")
def deployed():
    d = DeployedVitis(small_subs(), VitisConfig(rt_size=10), seed=2)
    d.run(60)
    return d


class TestConvergence:
    def test_ring_converges(self, deployed):
        assert is_ring_converged(deployed.ids_by_address(), deployed.successor_map())

    def test_routing_tables_fill(self, deployed):
        assert all(
            len(deployed.nodes[a].rt) == 10 for a in deployed.live_addresses()
        )

    def test_neighbor_state_learned_via_messages(self, deployed):
        """Election inputs come only from received profile messages.

        A small fraction of entries may be brand-new (selected in an
        exchange processed after the neighbor's last profile round) —
        those have simply not been heard from *yet*."""
        total = missing = 0
        for a in deployed.live_addresses():
            node = deployed.nodes[a]
            for entry in node.rt:
                total += 1
                info = node.neighbor_state.get(entry.address)
                if info is None or info.version < 0:
                    missing += 1
        assert missing <= 0.05 * total

    def test_every_cluster_elects_gateway(self, deployed):
        from repro.analysis.clusters import topic_clusters

        missing = 0
        for topic in deployed.topics():
            clusters = topic_clusters(deployed.cluster_adjacency(topic))
            gws = set(deployed.gateways_of(topic))
            for cluster in clusters:
                if not (gws & cluster):
                    missing += 1
        # Elections run on one-period-stale info; allow a small transient.
        total_clusters = sum(
            len(topic_clusters(deployed.cluster_adjacency(t)))
            for t in deployed.topics()
        )
        assert missing <= max(2, 0.05 * total_clusters)

    def test_lookup_consistency(self, deployed):
        tid = deployed.topic_id(deployed.topics()[0])
        ends = {
            deployed.lookup(a, tid).rendezvous
            for a in deployed.live_addresses()[:10]
        }
        assert len(ends) == 1


class TestDelivery:
    def test_full_hit_ratio(self, deployed):
        col = measure(deployed, 120, seed=3)
        assert col.hit_ratio() >= 0.99

    def test_overhead_premium_is_bounded(self, deployed):
        """Living maintenance costs more relay traffic than an idealized
        snapshot rebuild, but the premium must stay within a small
        constant factor."""
        col = measure(deployed, 120, seed=3)
        cycle = VitisProtocol(
            small_subs(), VitisConfig(rt_size=10), seed=2,
            election_every=0, relay_every=0,
        )
        cycle.run_cycles(50)
        cycle.finalize()
        col_cycle = measure(cycle, 120, seed=3)
        assert col.traffic_overhead_pct() < 5 * max(3.0, col_cycle.traffic_overhead_pct())


class TestRelayMaintenance:
    def test_relay_children_expire(self):
        d = DeployedVitis(small_subs(), VitisConfig(rt_size=10), seed=5)
        d.run(40)
        # Freeze all gateways by killing every node's timer except one
        # relay node: its child edges must decay after the TTL.
        victim = next(
            a for a in d.live_addresses() if d.nodes[a].relay.topics()
        )
        for a in d.live_addresses():
            if a != victim:
                d.nodes[a].undeploy()
        ttl = d.config.staleness_threshold * d.config.gossip_period
        d.run(ttl + 3)
        # Everything expires except branches the victim itself still
        # refreshes as the (now only) gateway of its own topics.
        own = set(d.nodes[victim].gw_state.gateway_topics())
        assert d.nodes[victim].relay.topics() <= own

    def test_crash_clears_on_redeploy(self):
        d = DeployedVitis(small_subs(), VitisConfig(rt_size=10), seed=5)
        d.run(30)
        victim = d.live_addresses()[0]
        d.leave(victim)
        assert not d.nodes[victim].alive
        d.join(victim)
        assert d.nodes[victim].alive
        assert d.nodes[victim].neighbor_state == {}

    def test_dead_node_evicted_from_tables(self):
        d = DeployedVitis(small_subs(), VitisConfig(rt_size=10), seed=5)
        d.run(30)
        victim = d.live_addresses()[0]
        d.leave(victim)
        d.run(d.config.staleness_threshold * 3 + 12)
        for a in d.live_addresses():
            assert victim not in d.nodes[a].rt


class TestLatency:
    def test_converges_under_latency(self):
        d = DeployedVitis(
            small_subs(),
            VitisConfig(rt_size=10),
            seed=2,
            latency=UniformLatency(0.01, 0.15, __import__("random").Random(9)),
        )
        d.run(70)
        assert is_ring_converged(d.ids_by_address(), d.successor_map())
        col = measure(d, 80, seed=3)
        assert col.hit_ratio() >= 0.98

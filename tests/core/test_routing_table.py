"""Tests for the bounded routing table."""

import pytest

from repro.core.routing_table import LinkKind, RoutingTable
from repro.gossip.view import Descriptor


def d(addr, age=0):
    return Descriptor(addr, addr * 31, age)


class TestReplace:
    def test_basic_install(self):
        rt = RoutingTable(owner=0, max_size=5)
        rt.replace([(d(1), LinkKind.SUCCESSOR), (d(2), LinkKind.FRIEND)])
        assert len(rt) == 2
        assert rt.get(1).kind is LinkKind.SUCCESSOR
        assert 2 in rt

    def test_rejects_owner(self):
        rt = RoutingTable(owner=0, max_size=5)
        with pytest.raises(ValueError):
            rt.replace([(d(0), LinkKind.FRIEND)])

    def test_rejects_duplicates(self):
        rt = RoutingTable(owner=0, max_size=5)
        with pytest.raises(ValueError):
            rt.replace([(d(1), LinkKind.FRIEND), (d(1), LinkKind.SW)])

    def test_rejects_overflow(self):
        rt = RoutingTable(owner=0, max_size=1)
        with pytest.raises(ValueError):
            rt.replace([(d(1), LinkKind.FRIEND), (d(2), LinkKind.SW)])

    def test_retained_neighbor_keeps_age(self):
        rt = RoutingTable(owner=0, max_size=5)
        rt.replace([(d(1), LinkKind.FRIEND)])
        rt.get(1).age = 3
        rt.replace([(d(1), LinkKind.SW), (d(2), LinkKind.FRIEND)])
        assert rt.get(1).age == 3  # staleness survives reselection
        assert rt.get(2).age == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RoutingTable(owner=0, max_size=0)


class TestAccessors:
    def setup_method(self):
        self.rt = RoutingTable(owner=0, max_size=6)
        self.rt.replace(
            [
                (d(1), LinkKind.SUCCESSOR),
                (d(2), LinkKind.PREDECESSOR),
                (d(3), LinkKind.SW),
                (d(4), LinkKind.FRIEND),
                (d(5), LinkKind.FRIEND),
            ]
        )

    def test_by_kind(self):
        assert [e.address for e in self.rt.by_kind(LinkKind.FRIEND)] == [4, 5]

    def test_successor_predecessor(self):
        assert self.rt.successor().address == 1
        assert self.rt.predecessor().address == 2

    def test_links_shape(self):
        links = dict(self.rt.links())
        assert links[3] == 3 * 31

    def test_addresses_and_entries(self):
        assert sorted(self.rt.addresses) == [1, 2, 3, 4, 5]
        assert len(self.rt.entries()) == 5
        assert len(self.rt.descriptors()) == 5

    def test_missing_ring_links(self):
        rt = RoutingTable(owner=0, max_size=3)
        assert rt.successor() is None
        assert rt.predecessor() is None


class TestHeartbeats:
    def test_heartbeat_resets_age(self):
        rt = RoutingTable(owner=0, max_size=3)
        rt.replace([(d(1), LinkKind.FRIEND)])
        rt.get(1).age = 4
        rt.heartbeat(1)
        assert rt.get(1).age == 0

    def test_heartbeat_unknown_is_noop(self):
        RoutingTable(owner=0, max_size=3).heartbeat(9)

    def test_age_and_evict(self):
        rt = RoutingTable(owner=0, max_size=4)
        rt.replace([(d(1), LinkKind.FRIEND), (d(2), LinkKind.FRIEND)])
        alive = {1}
        evicted = []
        for _ in range(4):
            evicted += rt.age_and_evict(lambda a: a in alive, threshold=2)
        assert evicted == [2]
        assert rt.get(1).age == 0
        assert 2 not in rt

    def test_remove(self):
        rt = RoutingTable(owner=0, max_size=3)
        rt.replace([(d(1), LinkKind.FRIEND)])
        assert rt.remove(1) is True
        assert rt.remove(1) is False

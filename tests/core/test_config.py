"""Tests for VitisConfig."""

import pytest

from repro.core.config import VitisConfig


class TestDefaults:
    def test_paper_defaults(self):
        c = VitisConfig()
        assert c.rt_size == 15
        assert c.n_sw_links == 1
        assert c.gateway_depth == 5
        assert c.n_ring_links == 2
        assert c.n_structural_links == 3  # the paper's k
        assert c.n_friends == 12

    def test_frozen(self):
        with pytest.raises(Exception):
            VitisConfig().rt_size = 20


class TestValidation:
    def test_rt_size_minimum(self):
        with pytest.raises(ValueError):
            VitisConfig(rt_size=2)

    def test_sw_links_nonnegative(self):
        with pytest.raises(ValueError):
            VitisConfig(n_sw_links=-1)

    def test_sw_links_fit(self):
        with pytest.raises(ValueError):
            VitisConfig(rt_size=10, n_sw_links=9)
        VitisConfig(rt_size=10, n_sw_links=8)  # exactly fits

    def test_gateway_depth_positive(self):
        with pytest.raises(ValueError):
            VitisConfig(gateway_depth=0)

    def test_staleness_positive(self):
        with pytest.raises(ValueError):
            VitisConfig(staleness_threshold=0)

    def test_gossip_period_positive(self):
        with pytest.raises(ValueError):
            VitisConfig(gossip_period=0)


class TestSweepKnobs:
    def test_with_friends(self):
        c = VitisConfig(rt_size=15).with_friends(6)
        assert c.n_friends == 6
        assert c.n_sw_links == 7
        assert c.rt_size == 15

    def test_with_friends_zero(self):
        c = VitisConfig(rt_size=15).with_friends(0)
        assert c.n_sw_links == 13

    def test_with_friends_max(self):
        c = VitisConfig(rt_size=15).with_friends(13)
        assert c.n_sw_links == 0

    def test_with_friends_overflow(self):
        with pytest.raises(ValueError):
            VitisConfig(rt_size=15).with_friends(14)

    def test_with_rt_size_keeps_split(self):
        c = VitisConfig().with_rt_size(35)
        assert c.rt_size == 35
        assert c.n_sw_links == 1
        assert c.n_friends == 32

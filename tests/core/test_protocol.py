"""Tests for the Vitis protocol orchestration."""

import pytest

from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.gossip.cyclon import CyclonService
from repro.smallworld.ring import is_ring_converged
from tests.conftest import small_subscriptions


def tiny_protocol(n=30, seed=7, **kw):
    subs = [frozenset({i % 5, (i + 1) % 5}) for i in range(n)]
    kw.setdefault("election_every", 0)
    kw.setdefault("relay_every", 0)
    return VitisProtocol(subs, VitisConfig(rt_size=6, n_sw_links=1), seed=seed, **kw)


class TestConstruction:
    def test_population_registered(self):
        p = tiny_protocol()
        assert p.live_count() == 30
        assert len(p.nodes) == 30

    def test_subscription_index(self):
        p = tiny_protocol()
        for t in range(5):
            assert p.subscribers(t)
        for t in p.sub_index:
            for a in p.sub_index[t]:
                assert p.nodes[a].profile.subscribes_to(t)

    def test_mapping_subscriptions_accepted(self):
        p = VitisProtocol({10: {1}, 20: {2}}, VitisConfig(rt_size=3, n_sw_links=0),
                          election_every=0, relay_every=0)
        assert sorted(p.nodes) == [10, 20]

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            VitisProtocol([], VitisConfig())

    def test_topic_universe_inferred(self):
        p = tiny_protocol()
        assert p.n_topics == 5

    def test_topic_id_cached_and_consistent(self):
        p = tiny_protocol()
        assert p.topic_id(3) == p.topic_id(3) == p.space.topic_id(3)


class TestConvergence:
    def test_ring_converges(self):
        p = tiny_protocol()
        p.run_cycles(40)
        assert is_ring_converged(p.ids_by_address(), p.successor_map())

    def test_routing_tables_fill(self):
        p = tiny_protocol()
        p.run_cycles(10)
        assert all(len(p.nodes[a].rt) == 6 for a in p.live_addresses())

    def test_lookup_consistency_after_convergence(self):
        p = tiny_protocol()
        p.run_cycles(40)
        tid = p.topic_id(2)
        ends = {p.lookup(a, tid).rendezvous for a in list(p.live_addresses())[:10]}
        assert len(ends) == 1
        assert ends.pop() == p.rendezvous_of(2)

    def test_deterministic_given_seed(self):
        a = tiny_protocol(seed=5)
        b = tiny_protocol(seed=5)
        a.run_cycles(15)
        b.run_cycles(15)
        assert a.successor_map() == b.successor_map()
        assert a.overlay_edges() == b.overlay_edges()

    def test_different_seeds_differ(self):
        a, b = tiny_protocol(seed=5), tiny_protocol(seed=6)
        a.run_cycles(15)
        b.run_cycles(15)
        assert a.overlay_edges() != b.overlay_edges()


class TestElectionAndRelays:
    def test_every_cluster_gets_a_gateway(self, converged_vitis):
        p = converged_vitis
        from repro.analysis.clusters import topic_clusters

        for topic in p.topics()[:20]:
            clusters = topic_clusters(p.cluster_adjacency(topic))
            gws = set(p.gateways_of(topic))
            for cluster in clusters:
                assert gws & cluster, f"cluster of topic {topic} lacks a gateway"

    def test_gateway_is_closest_id_within_depth(self, converged_vitis):
        p = converged_vitis
        topic = p.topics()[0]
        tid = p.topic_id(topic)
        for a in p.sub_index[topic]:
            prop = p.nodes[a].gw_state.get(topic)
            assert prop is not None
            assert prop.hops < p.config.gateway_depth

    def test_relay_paths_reach_common_rendezvous(self, converged_vitis):
        p = converged_vitis
        for topic in p.topics()[:15]:
            gws = p.gateways_of(topic)
            if len(gws) < 2:
                continue
            ends = {p.lookup(g, p.topic_id(topic)).rendezvous for g in gws}
            assert len(ends) == 1

    def test_finalize_idempotent_metrics(self, small_subs):
        p = VitisProtocol(small_subs, VitisConfig(rt_size=10), seed=42,
                          election_every=0, relay_every=0)
        p.run_cycles(50)
        p.finalize()
        first = {a: dict(p.nodes[a].relay.parent) for a in p.nodes}
        p.finalize()
        second = {a: dict(p.nodes[a].relay.parent) for a in p.nodes}
        assert first == second


class TestChurnOperations:
    def test_leave_removes_from_live(self):
        p = tiny_protocol()
        p.run_cycles(5)
        p.leave(3)
        assert not p.is_alive(3)
        assert 3 not in p.subscribers(p.nodes[3].profile.subscriptions.__iter__().__next__())

    def test_rejoin_bootstraps(self):
        p = tiny_protocol()
        p.run_cycles(5)
        p.leave(3)
        p.run_cycles(3)
        p.join(3)
        assert p.is_alive(3)
        assert len(p.nodes[3].rt) > 0

    def test_dead_neighbors_evicted_over_time(self):
        p = tiny_protocol()
        p.run_cycles(20)
        p.leave(3)
        # Full cleanup takes staleness_threshold cycles for the routing
        # table *plus* the peer-sampling TTL during which stale descriptors
        # can still be re-selected from sample buffers.
        p.run_cycles(p.config.staleness_threshold + 10 + 5)
        for a in p.live_addresses():
            assert 3 not in p.nodes[a].rt

    def test_subscribe_unsubscribe(self):
        p = tiny_protocol()
        p.subscribe(0, 99)
        assert 0 in p.subscribers(99)
        p.unsubscribe(0, 99)
        assert 0 not in p.subscribers(99)


class TestSamplerSwap:
    def test_cyclon_sampler_converges_too(self):
        p = tiny_protocol(sampler_cls=CyclonService)
        assert isinstance(p.nodes[0].ps, CyclonService)
        p.run_cycles(45)
        assert is_ring_converged(p.ids_by_address(), p.successor_map())

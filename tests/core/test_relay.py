"""Tests for relay-path installation and per-topic relay tables."""

from repro.core.relay import RelayStats, RelayTable, clear_topic, install_path
from repro.smallworld.routing import LookupResult


def tables(n):
    return {a: RelayTable(a) for a in range(n)}


def lookup(path, success=True):
    return LookupResult(target_id=0, path=list(path), success=success)


class TestRelayTable:
    def test_initially_off_tree(self):
        t = RelayTable(1)
        assert not t.on_tree(5)
        assert t.tree_neighbors(5) == []

    def test_parent_and_children(self):
        t = RelayTable(1)
        t.set_parent(5, 2)
        t.add_child(5, 3)
        t.add_child(5, 4)
        assert t.on_tree(5)
        assert set(t.tree_neighbors(5)) == {2, 3, 4}

    def test_drop_topic(self):
        t = RelayTable(1)
        t.set_parent(5, 2)
        t.add_child(6, 3)
        t.drop_topic(5)
        assert not t.on_tree(5)
        assert t.on_tree(6)

    def test_clear_and_topics(self):
        t = RelayTable(1)
        t.set_parent(5, 2)
        t.add_child(6, 3)
        assert t.topics() == {5, 6}
        t.clear()
        assert t.topics() == set()


class TestInstallPath:
    def test_installs_parent_child_chain(self):
        tbl = tables(4)
        assert install_path(9, lookup([0, 1, 2, 3]), tbl)
        assert tbl[0].parent[9] == 1
        assert tbl[1].parent[9] == 2
        assert tbl[2].parent[9] == 3
        assert 3 not in tbl[3].parent
        assert tbl[3].children[9] == {2}
        assert tbl[1].children[9] == {0}

    def test_trivial_path_gateway_is_rendezvous(self):
        tbl = tables(2)
        assert install_path(9, lookup([0]), tbl)
        assert not tbl[0].on_tree(9)

    def test_graft_stops_at_existing_branch(self):
        tbl = tables(5)
        stats = RelayStats()
        install_path(9, lookup([0, 2, 4]), tbl, stats)
        # Second path joins node 2, which already has a parent for 9.
        install_path(9, lookup([1, 2, 3]), tbl, stats)
        assert stats.grafts == 1
        assert tbl[2].parent[9] == 4   # unchanged: grafted, not rerouted
        assert tbl[2].children[9] == {0, 1}
        assert not tbl[3].on_tree(9)   # the tail past the graft never installs

    def test_failed_lookup_not_installed(self):
        tbl = tables(3)
        stats = RelayStats()
        assert not install_path(9, lookup([0, 1], success=False), tbl, stats)
        assert stats.failed_lookups == 1
        assert not tbl[0].on_tree(9)

    def test_stats_accumulate(self):
        tbl = tables(4)
        stats = RelayStats()
        install_path(9, lookup([0, 1, 2]), tbl, stats)
        assert stats.paths_installed == 1
        assert stats.total_path_hops == 2
        assert stats.rendezvous[9] == 2

    def test_stats_reset(self):
        stats = RelayStats()
        stats.paths_installed = 3
        stats.rendezvous[1] = 5
        stats.reset()
        assert stats.paths_installed == 0
        assert stats.rendezvous == {}

    def test_tree_connectivity(self):
        """All installed paths of a topic form one tree rooted at the
        rendezvous: every on-tree node reaches the root via parents."""
        tbl = tables(8)
        install_path(9, lookup([0, 3, 7]), tbl)
        install_path(9, lookup([1, 3, 6]), tbl)   # grafts at 3
        install_path(9, lookup([2, 5, 7]), tbl)
        root = 7
        for a, t in tbl.items():
            if not t.on_tree(9) or a == root:
                continue
            hops = 0
            cur = a
            while cur != root and hops < 10:
                cur = tbl[cur].parent.get(9, root)
                hops += 1
            assert cur == root


class TestClearTopic:
    def test_clears_across_population(self):
        tbl = tables(4)
        install_path(9, lookup([0, 1, 2]), tbl)
        clear_topic(9, tbl.values())
        assert all(not t.on_tree(9) for t in tbl.values())

"""Tests for the proximity-aware preference function."""

import random

import pytest

from repro.core.profile import NodeProfile
from repro.core.proximity import ProximityUtility
from repro.core.utility import UtilityFunction
from repro.sim.latency import CoordinateSpace


@pytest.fixture
def coords():
    return CoordinateSpace({0: (0.0, 0.0), 1: (0.0, 0.1), 2: (1.0, 1.0)})


def prof(addr, subs):
    return NodeProfile(addr, addr, subs)


class TestBlending:
    def test_beta_zero_is_eq1(self, coords):
        u = ProximityUtility(coords, beta=0.0)
        plain = UtilityFunction()
        a, b = prof(0, {1, 2}), prof(2, {2, 3})
        assert u(a, b) == plain(a, b)

    def test_beta_validated(self, coords):
        with pytest.raises(ValueError):
            ProximityUtility(coords, beta=1.5)

    def test_close_peer_preferred_at_equal_similarity(self, coords):
        u = ProximityUtility(coords, beta=0.3)
        me = prof(0, {1, 2})
        near = prof(1, {2, 3})   # same similarity, 0.1 away
        far = prof(2, {2, 3})    # same similarity, √2 away
        assert u(me, near) > u(me, far)

    def test_similarity_still_dominates_at_small_beta(self, coords):
        u = ProximityUtility(coords, beta=0.2)
        me = prof(0, {1, 2, 3})
        similar_far = prof(2, {1, 2, 3})  # identical interests, far
        disjoint_near = prof(1, {7, 8})   # nothing shared, near
        assert u(me, similar_far) > u(me, disjoint_near)

    def test_closeness_range(self, coords):
        u = ProximityUtility(coords, beta=1.0)
        assert u.closeness(0, 0) == 1.0
        assert u.closeness(0, 2) == pytest.approx(0.0, abs=1e-9)
        assert u.closeness(0, 99) == 0.5  # unknown node

    def test_symmetry(self, coords):
        u = ProximityUtility(coords, beta=0.4)
        a, b = prof(0, {1}), prof(2, {1, 5})
        assert u(a, b) == u(b, a)

    def test_self_utility_still_one(self, coords):
        u = ProximityUtility(coords, beta=0.4)
        a = prof(0, {1})
        assert u(a, a) == 1.0


class TestEndToEnd:
    def test_proximity_reduces_physical_cost(self):
        """The section III-A2 extension in action: at moderate beta the
        event dissemination costs less 'wire' at full delivery."""
        from repro.experiments.runner import build_vitis, measure
        from repro.core.config import VitisConfig
        from repro.sim.latency import CoordinateLatency
        from repro.workloads.subscriptions import bucket_subscriptions

        n = 100
        subs = bucket_subscriptions(n, 120, n_buckets=12, buckets_per_node=2,
                                    topics_per_bucket=5, seed=3)
        coords = CoordinateSpace.clustered(range(n), random.Random(5), n_sites=4)
        cost = CoordinateLatency(coords)

        results = {}
        for beta in (0.0, 0.25):
            vitis = build_vitis(
                subs, VitisConfig(rt_size=10), seed=3,
                utility=ProximityUtility(coords, beta=beta),
            )
            vitis.link_cost = cost.cost
            col = measure(vitis, 150, seed=4)
            results[beta] = col
        assert results[0.25].hit_ratio() == pytest.approx(1.0, abs=0.01)
        assert (
            results[0.25].mean_physical_cost()
            < results[0.0].mean_physical_cost()
        )

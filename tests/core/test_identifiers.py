"""Tests for the circular id space."""

import pytest

from repro.core.identifiers import IdSpace


class TestConstruction:
    def test_default_is_64_bits(self):
        assert IdSpace().bits == 64

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IdSpace(bits=4)
        with pytest.raises(ValueError):
            IdSpace(bits=200)


class TestHashing:
    def test_deterministic(self):
        a, b = IdSpace(), IdSpace()
        assert a.hash_key("topic-1") == b.hash_key("topic-1")

    def test_in_range(self):
        s = IdSpace(bits=16)
        for k in range(200):
            assert 0 <= s.hash_key(k) < s.size

    def test_node_and_topic_namespaces_disjoint(self):
        s = IdSpace()
        assert s.node_id(5) != s.topic_id(5)

    def test_roughly_uniform(self):
        s = IdSpace(bits=32)
        ids = [s.hash_key(i) for i in range(2000)]
        # Mean should be near the middle of the space.
        mean = sum(ids) / len(ids)
        assert 0.4 * s.size < mean < 0.6 * s.size


class TestGeometry:
    space = IdSpace(bits=8)  # size 256

    def test_distance_symmetric(self):
        assert self.space.distance(10, 250) == self.space.distance(250, 10) == 16

    def test_distance_max_is_half(self):
        assert self.space.distance(0, 128) == 128

    def test_distance_zero(self):
        assert self.space.distance(7, 7) == 0

    def test_clockwise(self):
        assert self.space.clockwise(250, 10) == 16
        assert self.space.clockwise(10, 250) == 240
        assert self.space.clockwise(5, 5) == 0

    def test_fraction(self):
        assert self.space.fraction(0, 128) == 0.5
        assert self.space.fraction(0, 64) == 0.25

    def test_offset_wraps(self):
        assert self.space.offset(250, 10) == 4
        assert self.space.offset(5, -10) == 251

    def test_between(self):
        s = self.space
        assert s.between(20, 10, 30)
        assert s.between(30, 10, 30)  # inclusive right
        assert not s.between(10, 10, 30)  # exclusive left
        assert s.between(5, 250, 30)  # wrap
        assert not s.between(100, 250, 30)


class TestSelection:
    space = IdSpace(bits=8)

    def test_closest(self):
        assert self.space.closest(100, [10, 90, 200]) == 90

    def test_closest_wraps(self):
        assert self.space.closest(2, [250, 100]) == 250

    def test_closest_tie_prefers_smaller(self):
        assert self.space.closest(100, [90, 110]) == 90

    def test_closest_empty(self):
        assert self.space.closest(100, []) is None

    def test_rank_by_distance(self):
        ranked = self.space.rank_by_distance(100, [10, 90, 200, 110])
        assert ranked == [90, 110, 10, 200] or ranked[0] in (90, 110)
        assert set(ranked) == {10, 90, 200, 110}

"""Tests for VitisNode: Alg. 4 selection, exchanges, heartbeats."""

import random

from repro.core.config import VitisConfig
from repro.core.identifiers import IdSpace
from repro.core.node import VitisNode
from repro.core.routing_table import LinkKind
from repro.core.utility import UtilityFunction
from repro.gossip.view import Descriptor

SPACE = IdSpace()


def make_node(address=0, subs=(1, 2, 3), rt_size=8, n_sw=1, seed=0):
    cfg = VitisConfig(rt_size=rt_size, n_sw_links=n_sw, n_estimate=50)
    return VitisNode(
        address,
        SPACE.node_id(address),
        set(subs),
        cfg,
        SPACE,
        UtilityFunction(),
        random.Random(seed),
    )


def descriptors(addresses):
    return [Descriptor(a, SPACE.node_id(a)) for a in addresses]


class TestSelectNeighbors:
    def test_ring_links_first(self):
        node = make_node()
        cands = descriptors(range(1, 20))
        selection = node.select_neighbors(cands, lambda a: None)
        kinds = [k for _, k in selection]
        assert kinds[0] is LinkKind.SUCCESSOR
        assert kinds[1] is LinkKind.PREDECESSOR
        assert kinds.count(LinkKind.SW) == 1
        assert kinds.count(LinkKind.FRIEND) == 5  # 8 - 3

    def test_successor_is_truly_closest_clockwise(self):
        node = make_node()
        cands = descriptors(range(1, 30))
        selection = dict((k, d) for d, k in node.select_neighbors(cands, lambda a: None))
        succ = selection[LinkKind.SUCCESSOR]
        my = node.node_id
        for d in cands:
            if d.address != succ.address:
                assert SPACE.clockwise(my, succ.node_id) <= SPACE.clockwise(my, d.node_id)

    def test_no_duplicate_slots(self):
        node = make_node()
        cands = descriptors(range(1, 5))
        selection = node.select_neighbors(cands, lambda a: None)
        addrs = [d.address for d, _ in selection]
        assert len(addrs) == len(set(addrs))

    def test_friends_ranked_by_utility(self):
        node = make_node(subs=(1, 2, 3, 4), rt_size=5, n_sw=0)
        profiles = {
            10: make_node(10, subs=(1, 2, 3, 4)).profile,   # utility 1.0
            11: make_node(11, subs=(1, 2)).profile,          # utility 0.5
            12: make_node(12, subs=(9,)).profile,            # utility 0.0
        }
        cands = descriptors([10, 11, 12])
        selection = node.select_neighbors(cands, profiles.get)
        friends = [d.address for d, k in selection if k is LinkKind.FRIEND]
        # One of the three fills a ring slot; the remaining friends are in
        # utility order.
        assert friends == sorted(friends, key=lambda a: -node.utility(node.profile, profiles[a]))

    def test_fewer_candidates_than_slots(self):
        node = make_node(rt_size=15)
        selection = node.select_neighbors(descriptors([1, 2]), lambda a: None)
        assert len(selection) == 2

    def test_self_excluded(self):
        node = make_node(address=3)
        cands = descriptors([3, 4, 5])
        selection = node.select_neighbors(cands, lambda a: None)
        assert all(d.address != 3 for d, _ in selection)


class TestJoin:
    def test_join_seeds_routing_table(self):
        node = make_node()
        node.join(descriptors([5, 6, 7]))
        assert node.alive
        assert len(node.rt) == 3

    def test_rejoin_resets_state(self):
        node = make_node()
        node.join(descriptors([5, 6, 7]))
        node.gw_state.proposals[1] = "whatever"
        node.relay.set_parent(1, 5)
        node.seen_events.add(9)
        node.stop()
        node.join(descriptors([8]))
        assert node.gw_state.proposals == {}
        assert not node.relay.on_tree(1)
        assert node.seen_events == set()
        assert node.rt.addresses == [8]


class TestExchange:
    def test_exchange_installs_both_sides(self):
        a, b = make_node(0, seed=1), make_node(1, seed=2)
        a.join(descriptors([1]))
        b.join(descriptors([0]))
        nodes = {0: a, 1: b}
        peer = a.tman_step(nodes.get, lambda x: True, lambda x: nodes[x].profile if x in nodes else None)
        assert peer == 1
        assert 1 in a.rt
        assert 0 in b.rt

    def test_dead_peer_dropped(self):
        a, b = make_node(0), make_node(1)
        a.join(descriptors([1]))
        b.join(descriptors([0]))
        b.stop()
        nodes = {0: a, 1: b}
        result = a.tman_step(nodes.get, lambda x: x == 0, lambda x: None)
        assert result is None
        assert 1 not in a.rt

    def test_exchange_buffer_freshness(self):
        a = make_node(0)
        a.join(descriptors([1, 2]))
        buf = a.exchange_buffer()
        addrs = {d.address for d in buf}
        assert 0 not in addrs
        assert {1, 2} <= addrs


class TestHeartbeats:
    def test_eviction_after_threshold(self):
        node = make_node()
        node.join(descriptors([1, 2]))
        threshold = node.config.staleness_threshold
        evicted = []
        for _ in range(threshold + 1):
            evicted += node.heartbeat_step(lambda a: a == 1)
        assert evicted == [2]
        assert 2 not in node.rt
        assert node.rt.get(1).age == 0


class TestIntrospection:
    def test_interested_neighbors(self):
        node = make_node(0, subs=(1, 2))
        node.join(descriptors([1, 2]))
        profiles = {
            1: make_node(1, subs=(1,)).profile,
            2: make_node(2, subs=(9,)).profile,
        }
        assert node.interested_neighbors(1, profiles.get) == [1]
        assert node.degree() == 2

"""Causal span tracing through dissemination (the repro.obs.spans layer).

Two concerns, tested separately:

- **Fidelity** — on a hand-built 3-cluster topology with a known relay
  tree, the reconstructed span tree must match the planted
  flood/lookup/relay/rendezvous/delivery hops *exactly*, including under
  an injected link fault (partition), and the fast path and the
  network reference path must reconstruct the same tree.
- **Zero cost off** — tracing must never change results: untraced runs
  have no span machinery at all, and a traced run's dissemination
  records are identical to an untraced run's, even with a fault model
  attached (attribution consumes no RNG).
"""

import io
import json
import random

import pytest

from repro import obs
from repro.core.config import VitisConfig
from repro.core.dissemination import disseminate, disseminate_via_network
from repro.core.protocol import VitisProtocol
from repro.faults import MessageLoss, Partition
from repro.obs.audit import audit_trace
from repro.obs.spans import build_span_trees

TOPIC = 0


def captured_telemetry():
    buf = io.StringIO()
    tel = obs.Telemetry(trace=obs.TraceWriter(buf, flush_every=1))
    return tel, buf


def events_of(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def planted_protocol(telemetry=None):
    """Three 3-node clusters of one topic, joined by a planted relay tree.

    Clusters (chains): A = 0-1-2, B = 3-4-5, C = 6-7-8; node 9 is an
    uninterested relay serving as rendezvous; node 10 is an uninterested
    bystander.  Relay tree: gateways 0, 3, 6, each with parent 9.
    """
    subs = {a: {TOPIC} for a in range(9)}
    subs[9] = set()
    subs[10] = set()
    p = VitisProtocol(
        subs, VitisConfig(rt_size=6), seed=3, election_every=0, relay_every=0,
        telemetry=telemetry,
    )
    adj = {0: {1}, 1: {0, 2}, 2: {1}, 3: {4}, 4: {3, 5}, 5: {4},
           6: {7}, 7: {6, 8}, 8: {7}}
    p.cluster_adjacency = lambda topic: adj
    for gw in (0, 3, 6):
        p.nodes[gw].relay.set_parent(TOPIC, 9)
        p.nodes[9].relay.add_child(TOPIC, gw)
    p.relay_stats.rendezvous[TOPIC] = 9
    return p


def edges_of(tree):
    """Canonical successful non-root, non-deliver spans as
    ``(kind, src, dst, hop)`` tuples."""
    return sorted(
        (s.kind, s.src, s.dst, s.hop)
        for s in tree.spans.values()
        if s.parent is not None and s.kind != "deliver" and s.ok
    )


def deliveries_of(tree):
    return sorted((s.dst, s.hop) for s in tree.deliveries())


PLANTED_EDGES = sorted([
    ("flood", 2, 1, 1),
    ("flood", 1, 0, 2),
    ("relay", 0, 9, 3),
    ("rendezvous", 9, 3, 4),
    ("rendezvous", 9, 6, 4),
    ("flood", 3, 4, 5),
    ("flood", 4, 5, 6),
    ("flood", 6, 7, 5),
    ("flood", 7, 8, 6),
])

PLANTED_DELIVERIES = sorted(
    [(1, 1), (0, 2), (3, 4), (6, 4), (4, 5), (5, 6), (7, 5), (8, 6)]
)


class TestPlantedTopology:
    def test_fast_path_matches_planted_tree_exactly(self):
        tel, buf = captured_telemetry()
        p = planted_protocol(tel)
        rec = disseminate(p, TOPIC, publisher=2, event_id=7)
        assert rec.hit_ratio() == 1.0
        trees = build_span_trees(events_of(buf))
        assert len(trees) == 1
        tree = next(iter(trees.values()))
        assert tree.trace_id == rec.trace_id
        assert tree.is_complete()
        assert tree.meta == {"topic": TOPIC, "event": 7, "publisher": 2, "subs": 8}
        root = tree.spans[tree.root]
        assert root.kind == "publish" and root.src == 2 and root.hop == 0
        assert edges_of(tree) == PLANTED_EDGES
        assert deliveries_of(tree) == PLANTED_DELIVERIES
        assert tree.misses == []

    def test_parent_chain_follows_topology(self):
        tel, buf = captured_telemetry()
        p = planted_protocol(tel)
        disseminate(p, TOPIC, publisher=2)
        tree = next(iter(build_span_trees(events_of(buf)).values()))
        # Path to the deepest delivery in cluster B crosses every layer.
        deep = [s for s in tree.deliveries() if s.dst == 5][0]
        kinds = [s.kind for s in tree.path_to_root(deep.span)]
        assert kinds == [
            "publish", "flood", "flood", "relay", "rendezvous",
            "flood", "flood", "deliver",
        ]

    def test_injection_lookup_hops(self):
        """A publisher off the clusters and off the tree injects by a
        rendezvous lookup; the planted path shows up as lookup spans."""
        tel, buf = captured_telemetry()
        p = planted_protocol(tel)
        p.publisher_targets = lambda pub, topic: (set(), [10, 9])
        rec = disseminate(p, TOPIC, publisher=10)
        assert rec.hit_ratio() == 1.0
        tree = next(iter(build_span_trees(events_of(buf)).values()))
        assert ("lookup", 10, 9, 1) in edges_of(tree)
        assert sorted(
            (s.src, s.dst) for s in tree.spans.values() if s.kind == "rendezvous"
        ) == [(9, 0), (9, 3), (9, 6)]
        # All nine subscribers delivered (publisher 10 subscribes to nothing).
        assert len(tree.deliveries()) == 9

    def test_network_path_reconstructs_same_tree(self):
        tel_a, buf_a = captured_telemetry()
        rec_a = disseminate(planted_protocol(tel_a), TOPIC, publisher=2)
        tel_b, buf_b = captured_telemetry()
        rec_b = disseminate_via_network(planted_protocol(tel_b), TOPIC, publisher=2)
        assert rec_a.delivered_hops == rec_b.delivered_hops
        tree_a = next(iter(build_span_trees(events_of(buf_a)).values()))
        tree_b = next(iter(build_span_trees(events_of(buf_b)).values()))
        assert edges_of(tree_a) == edges_of(tree_b)
        assert deliveries_of(tree_a) == deliveries_of(tree_b)
        assert tree_a.meta == tree_b.meta

    def test_partitioned_cluster_attributed_exactly(self):
        """Sever cluster C from the rest: its three subscribers miss with
        cause ``partition`` and the planted blocking edge 9 → 6."""
        tel, buf = captured_telemetry()
        p = planted_protocol(tel)
        p.attach_faults(Partition([{0, 1, 2, 3, 4, 5, 9, 10}, {6, 7, 8}]))
        rec = disseminate(p, TOPIC, publisher=2)
        assert sorted(rec.subscribers - set(rec.delivered_hops)) == [6, 7, 8]
        tree = next(iter(build_span_trees(events_of(buf)).values()))
        assert tree.is_complete()
        # The reachable side of the planted tree is intact.
        reachable = [e for e in PLANTED_EDGES if e[2] not in (6, 7, 8)]
        assert edges_of(tree) == reachable
        # The severed edge shows up as a failure span...
        (failure,) = tree.failures()
        assert (failure.src, failure.dst) == (9, 6)
        assert failure.status == "partition"
        # ... and every miss is attributed to it (or to the cut-off chain).
        assert sorted(m["addr"] for m in tree.misses) == [6, 7, 8]
        assert all(m["cause"] == "partition" for m in tree.misses)
        blocked = [m for m in tree.misses if m["addr"] == 6][0]
        assert (blocked["src"], blocked["dst"]) == (9, 6)

    def test_dead_subtree_attributed_to_dead_node(self):
        tel, buf = captured_telemetry()
        p = planted_protocol(tel)
        p.leave(3)
        rec = disseminate(p, TOPIC, publisher=2)
        assert sorted(rec.subscribers - set(rec.delivered_hops)) == [4, 5]
        tree = next(iter(build_span_trees(events_of(buf)).values()))
        (failure,) = tree.failures()
        assert (failure.src, failure.dst) == (9, 3)
        assert failure.status == "dead_node"
        assert sorted(m["addr"] for m in tree.misses) == [4, 5]
        assert all(m["cause"] == "dead_node" for m in tree.misses)

    def test_audit_passes_on_planted_runs(self):
        tel, buf = captured_telemetry()
        p = planted_protocol(tel)
        disseminate(p, TOPIC, publisher=2, event_id=0)
        p.attach_faults(Partition([{0, 1, 2, 3, 4, 5, 9, 10}, {6, 7, 8}]))
        disseminate(p, TOPIC, publisher=2, event_id=1)
        report = audit_trace(events_of(buf))
        assert report.n_events == 2
        assert report.ok
        assert report.cause_totals() == {"partition": 3}


class TestZeroCostOff:
    """Tracing disabled → byte-identical results; enabled → same results."""

    FIELDS = (
        "delivered_hops", "interested_msgs", "relay_msgs", "faults",
        "retries", "shed", "deferred", "pull_requests", "pull_replies",
    )

    def record_fields(self, rec):
        return {f: getattr(rec, f) for f in self.FIELDS}

    def test_untraced_record_has_no_trace_id(self):
        rec = disseminate(planted_protocol(), TOPIC, publisher=2)
        assert rec.trace_id is None

    def test_traced_equals_untraced_perfect_transport(self):
        tel, _ = captured_telemetry()
        traced = disseminate(planted_protocol(tel), TOPIC, publisher=2)
        plain = disseminate(planted_protocol(), TOPIC, publisher=2)
        assert self.record_fields(traced) == self.record_fields(plain)

    def test_traced_equals_untraced_under_faults(self):
        """Attribution must not consume fault RNG: same loss model seed →
        identical drops, deliveries and counters either way."""
        results = []
        for telemetry in (None, captured_telemetry()[0]):
            p = planted_protocol(telemetry)
            p.attach_faults(MessageLoss(0.4, random.Random(99)))
            recs = [
                self.record_fields(disseminate(p, TOPIC, publisher=2, event_id=i))
                for i in range(10)
            ]
            results.append(recs)
        assert results[0] == results[1]

    def test_traced_equals_untraced_full_protocol_run(self):
        """Same seed, cycles and publishes: every dissemination record of
        a traced converged run matches the untraced run field-for-field."""

        def run(telemetry):
            from tests.conftest import small_subscriptions

            p = VitisProtocol(
                small_subscriptions(), VitisConfig(rt_size=10, n_sw_links=1),
                seed=11, election_every=0, relay_every=0, telemetry=telemetry,
            )
            p.run_cycles(20)
            p.finalize()
            out = []
            for topic in p.topics()[:20]:
                subs = sorted(p.subscribers(topic))
                if not subs:
                    continue
                rec = disseminate(p, topic, subs[0], event_id=topic)
                out.append(self.record_fields(rec))
            return out, p.relay_stats.as_dict()

        plain = run(None)
        traced = run(captured_telemetry()[0])
        assert plain == traced


class TestConvergedRunCompleteness:
    def test_every_event_reconstructs_and_reconciles(self, small_subs):
        tel, buf = captured_telemetry()
        p = VitisProtocol(
            small_subs, VitisConfig(rt_size=10, n_sw_links=1),
            seed=42, election_every=0, relay_every=0, telemetry=tel,
        )
        p.run_cycles(30)
        p.finalize()
        for topic in p.topics()[:30]:
            subs = sorted(p.subscribers(topic))
            if subs:
                disseminate(p, topic, subs[0], event_id=topic)
        report = audit_trace(events_of(buf))
        assert report.n_events > 0
        assert report.ok, [vars(e) for e in report.failures()]
        assert report.n_incomplete == 0

    def test_install_traces_recorded(self, small_subs):
        tel, buf = captured_telemetry()
        p = VitisProtocol(
            small_subs, VitisConfig(rt_size=10, n_sw_links=1),
            seed=42, election_every=0, relay_every=0, telemetry=tel,
        )
        p.run_cycles(30)
        p.finalize()  # installs relay paths under tracing
        trees = build_span_trees(events_of(buf))
        installs = [
            t for t in trees.values() if t.trace_id.startswith("i")
        ]
        assert installs
        for t in installs:
            assert t.is_complete()
            root = t.spans[t.root]
            assert root.kind == "lookup"
            assert "topic" in t.meta and "gateway" in t.meta
            # Install walks are chains: each span has at most one child.
            assert all(len(c) <= 1 for c in t.children.values())

"""Tests for event dissemination — fast path and message-level reference.

The critical test is equivalence: the BFS fast path and the real-message
reference path must produce identical deliveries, hop counts and message
counts on a static overlay.
"""

import pytest

from repro.core.dissemination import (
    disseminate,
    disseminate_via_network,
    forwarding_targets,
)


def topics_with_subs(p, k):
    return [t for t in p.topics() if len(p.subscribers(t)) >= 2][:k]


class TestDelivery:
    def test_full_hit_ratio_on_converged_overlay(self, converged_vitis):
        p = converged_vitis
        for topic in p.topics():
            subs = sorted(p.subscribers(topic))
            if not subs:
                continue
            rec = disseminate(p, topic, subs[0], event_id=topic)
            assert rec.hit_ratio() == 1.0, f"missed subscribers on topic {topic}"

    def test_delivery_from_any_publisher(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        for pub in sorted(p.subscribers(topic)):
            rec = disseminate(p, topic, pub)
            assert rec.hit_ratio() == 1.0

    def test_publisher_excluded_from_denominator(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        pub = sorted(p.subscribers(topic))[0]
        rec = disseminate(p, topic, pub)
        assert pub not in rec.subscribers
        assert pub not in rec.delivered_hops

    def test_dead_publisher_delivers_nothing(self, small_subs):
        from repro.core.config import VitisConfig
        from repro.core.protocol import VitisProtocol

        p = VitisProtocol(small_subs, VitisConfig(rt_size=10), seed=1,
                          election_every=0, relay_every=0)
        p.run_cycles(5)
        topic = p.topics()[0]
        pub = sorted(p.subscribers(topic))[0]
        p.leave(pub)
        rec = disseminate(p, topic, pub)
        assert rec.delivered_hops == {}
        assert rec.total_messages == 0

    def test_uninterested_publisher_via_lookup(self, converged_vitis):
        p = converged_vitis
        # Find a topic and a live node not subscribed to it with no
        # interested neighbors (forces the rendezvous-injection path).
        for topic in p.topics():
            subs = p.subscribers(topic)
            if not subs:
                continue
            for a in p.live_addresses():
                if a in subs:
                    continue
                node = p.nodes[a]
                if node.relay.on_tree(topic):
                    continue
                interested = [b for b, _ in node.rt.links()
                              if p.profile_of(b).subscribes_to(topic)]
                if interested:
                    continue
                rec = disseminate(p, topic, a)
                assert rec.hit_ratio() == 1.0
                assert rec.total_relay_messages > 0
                return
        pytest.skip("no suitable uninterested publisher found")


class TestTrafficAccounting:
    def test_messages_classified_by_receiver_interest(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        pub = sorted(p.subscribers(topic))[0]
        rec = disseminate(p, topic, pub)
        for addr in rec.interested_msgs:
            assert p.profile_of(addr).subscribes_to(topic)
        for addr in rec.relay_msgs:
            assert not p.profile_of(addr).subscribes_to(topic)

    def test_publisher_does_not_receive(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        pub = sorted(p.subscribers(topic))[0]
        rec = disseminate(p, topic, pub)
        assert pub not in rec.interested_msgs
        assert pub not in rec.relay_msgs

    def test_hops_are_bfs_levels(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        pub = sorted(p.subscribers(topic))[0]
        rec = disseminate(p, topic, pub)
        # Direct neighbors of the publisher must be at hop 1.
        adj = p.cluster_adjacency(topic)
        for v in adj.get(pub, ()):
            assert rec.delivered_hops.get(v) == 1


class TestForwardingTargets:
    def test_interested_node_floods_cluster(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        member = sorted(p.subscribers(topic))[0]
        targets = forwarding_targets(p, member, topic)
        adj = p.cluster_adjacency(topic)
        assert adj.get(member, set()) <= targets

    def test_relay_node_forwards_tree_only(self, converged_vitis):
        p = converged_vitis
        for topic in p.topics():
            for a in p.live_addresses():
                node = p.nodes[a]
                if node.relay.on_tree(topic) and not node.profile.subscribes_to(topic):
                    targets = forwarding_targets(p, a, topic)
                    assert targets == set(node.relay.tree_neighbors(topic))
                    return
        pytest.skip("no pure relay node found")


class TestEquivalence:
    """Fast path == reference message-level path, event by event."""

    def test_records_identical(self, converged_vitis):
        p = converged_vitis
        checked = 0
        for topic in topics_with_subs(p, 12):
            pub = sorted(p.subscribers(topic))[0]
            fast = disseminate(p, topic, pub, event_id=1)
            slow = disseminate_via_network(p, topic, pub, event_id=1)
            assert fast.delivered_hops == slow.delivered_hops
            assert fast.interested_msgs == slow.interested_msgs
            assert fast.relay_msgs == slow.relay_msgs
            checked += 1
        assert checked == 12

    def test_network_counters_move(self, converged_vitis):
        p = converged_vitis
        topic = topics_with_subs(p, 1)[0]
        pub = sorted(p.subscribers(topic))[0]
        before = sum(p.network.sent.values())
        disseminate_via_network(p, topic, pub)
        assert sum(p.network.sent.values()) > before

"""Tests for node profiles."""

from repro.core.profile import NodeProfile


class TestSubscriptions:
    def test_initial_set(self):
        p = NodeProfile(1, 100, {3, 4})
        assert p.subscriptions == frozenset({3, 4})
        assert len(p) == 2

    def test_subscribe_new(self):
        p = NodeProfile(1, 100)
        assert p.subscribe(7) is True
        assert p.subscribes_to(7)

    def test_subscribe_duplicate(self):
        p = NodeProfile(1, 100, {7})
        assert p.subscribe(7) is False

    def test_unsubscribe(self):
        p = NodeProfile(1, 100, {7})
        assert p.unsubscribe(7) is True
        assert not p.subscribes_to(7)
        assert p.unsubscribe(7) is False

    def test_replace(self):
        p = NodeProfile(1, 100, {1, 2})
        p.replace_subscriptions({8, 9})
        assert p.subscriptions == frozenset({8, 9})


class TestVersioning:
    def test_version_bumps_on_change(self):
        p = NodeProfile(1, 100)
        v0 = p.version
        p.subscribe(1)
        assert p.version == v0 + 1
        p.unsubscribe(1)
        assert p.version == v0 + 2
        p.replace_subscriptions({5})
        assert p.version == v0 + 3

    def test_no_bump_on_noop(self):
        p = NodeProfile(1, 100, {1})
        v0 = p.version
        p.subscribe(1)
        p.unsubscribe(99)
        assert p.version == v0

    def test_snapshot_is_immutable(self):
        p = NodeProfile(1, 100, {1})
        snap = p.subscriptions
        p.subscribe(2)
        assert snap == frozenset({1})

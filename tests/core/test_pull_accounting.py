"""Tests for notify-then-pull accounting (paper section III-C)."""

import pytest

from repro.core.dissemination import disseminate


def first_topic(p):
    return max(p.topics(), key=lambda t: len(p.subscribers(t)))


class TestPullAccounting:
    def test_default_counts_no_pulls(self, converged_vitis):
        p = converged_vitis
        topic = first_topic(p)
        pub = sorted(p.subscribers(topic))[0]
        rec = disseminate(p, topic, pub)
        assert rec.pull_requests == 0 and rec.pull_replies == 0

    def test_one_pull_per_first_receipt(self, converged_vitis):
        p = converged_vitis
        topic = first_topic(p)
        pub = sorted(p.subscribers(topic))[0]
        plain = disseminate(p, topic, pub)
        pulled = disseminate(p, topic, pub, count_pulls=True)
        # One pull round-trip per node that received the notification for
        # the first time (== number of distinct receivers).
        distinct_receivers = len(
            set(plain.interested_msgs) | set(plain.relay_msgs)
        )
        assert pulled.pull_requests == distinct_receivers
        assert pulled.pull_replies == distinct_receivers

    def test_delivery_unchanged_by_pulls(self, converged_vitis):
        p = converged_vitis
        topic = first_topic(p)
        pub = sorted(p.subscribers(topic))[0]
        plain = disseminate(p, topic, pub)
        pulled = disseminate(p, topic, pub, count_pulls=True)
        assert plain.delivered_hops == pulled.delivered_hops

    def test_message_total_grows_by_two_per_pull(self, converged_vitis):
        p = converged_vitis
        topic = first_topic(p)
        pub = sorted(p.subscribers(topic))[0]
        plain = disseminate(p, topic, pub)
        pulled = disseminate(p, topic, pub, count_pulls=True)
        assert pulled.total_messages == plain.total_messages + 2 * pulled.pull_requests

    def test_overhead_shifts_only_modestly(self, converged_vitis):
        """Pull traffic follows the same edges as notifications, so the
        relay *proportion* moves only a little — the paper's
        notification-based overhead metric is representative."""
        p = converged_vitis
        topics = [t for t in p.topics() if len(p.subscribers(t)) >= 2][:20]
        def overhead(count_pulls):
            relay = total = 0
            for t in topics:
                pub = sorted(p.subscribers(t))[0]
                r = disseminate(p, t, pub, count_pulls=count_pulls)
                relay += r.total_relay_messages
                total += r.total_messages
            return 100.0 * relay / total
        assert overhead(True) == pytest.approx(overhead(False), abs=10.0)

"""Tests for the Eq. 1 preference function."""

import numpy as np
import pytest

from repro.core.profile import NodeProfile
from repro.core.utility import PublicationRates, UtilityFunction


def profiles():
    A, B, C, D, E, F, G, H = range(8)
    p = NodeProfile(0, 0, {A, B, C})
    q = NodeProfile(1, 1, {C, D})
    r = NodeProfile(2, 2, {C, D, E, F, G, H})
    return p, q, r


class TestPaperExample:
    """Section III-A2 worked example: uniform rates."""

    def test_values(self):
        p, q, r = profiles()
        u = UtilityFunction()
        assert u(p, q) == pytest.approx(0.25)
        assert u(p, r) == pytest.approx(0.125)
        assert u(q, r) == pytest.approx(1 / 3)

    def test_preference_ordering(self):
        """p prefers q over r although it shares exactly one topic with
        both — the paper's point."""
        p, q, r = profiles()
        u = UtilityFunction()
        assert u(p, q) > u(p, r)


class TestBasicProperties:
    def test_symmetry(self):
        p, q, _ = profiles()
        u = UtilityFunction()
        assert u(p, q) == u(q, p)

    def test_self_is_one(self):
        p, _, _ = profiles()
        assert UtilityFunction()(p, p) == 1.0

    def test_disjoint_is_zero(self):
        a = NodeProfile(0, 0, {1, 2})
        b = NodeProfile(1, 1, {3, 4})
        assert UtilityFunction()(a, b) == 0.0

    def test_empty_sets(self):
        a = NodeProfile(0, 0)
        b = NodeProfile(1, 1)
        assert UtilityFunction()(a, b) == 0.0

    def test_identical_sets_is_one(self):
        a = NodeProfile(0, 0, {1, 2})
        b = NodeProfile(1, 1, {1, 2})
        assert UtilityFunction()(a, b) == 1.0


class TestRateWeighting:
    def test_zero_rate_topics_ignored(self):
        """Paper: 'if the publication rate for topic t goes to zero ...
        t is practically ignored'."""
        rates = PublicationRates(np.array([1.0, 1.0, 0.0]))
        a = NodeProfile(0, 0, {0, 2})
        b = NodeProfile(1, 1, {1, 2})
        u = UtilityFunction(rates)
        # Shared topic 2 has rate 0: utility is 0 despite the overlap.
        assert u(a, b) == 0.0

    def test_hot_shared_topic_raises_utility(self):
        rates = PublicationRates(np.array([10.0, 1.0, 1.0]))
        hot_pair = UtilityFunction(rates)(
            NodeProfile(0, 0, {0, 1}), NodeProfile(1, 1, {0, 2})
        )
        cold_pair = UtilityFunction(rates)(
            NodeProfile(2, 2, {1, 0}), NodeProfile(3, 3, {1, 2})
        )
        assert hot_pair > cold_pair

    def test_rate_weighted_flag_off_means_jaccard(self):
        rates = PublicationRates(np.array([10.0, 1.0, 1.0]))
        u = UtilityFunction(rates, rate_weighted=False)
        a = NodeProfile(0, 0, {0, 1})
        b = NodeProfile(1, 1, {0, 2})
        assert u(a, b) == pytest.approx(1 / 3)

    def test_uniform_rates_match_jaccard(self):
        rates = PublicationRates.uniform(8, rate=3.5)
        p, q, r = profiles()
        u = UtilityFunction(rates)
        assert u(p, q) == pytest.approx(0.25)
        assert u(q, r) == pytest.approx(1 / 3)


class TestCaching:
    def test_cache_populates(self):
        p, q, _ = profiles()
        u = UtilityFunction()
        u(p, q)
        assert u.cache_info()["pairs"] == 1
        u(q, p)  # symmetric hit
        assert u.cache_info()["pairs"] == 1

    def test_subscription_change_invalidates(self):
        a = NodeProfile(0, 0, {1, 2})
        b = NodeProfile(1, 1, {2, 3})
        u = UtilityFunction()
        before = u(a, b)
        a.subscribe(3)
        after = u(a, b)
        assert after != before
        assert after == pytest.approx(2 / 3)

    def test_rates_change_invalidates(self):
        rates = PublicationRates(np.array([1.0, 1.0]))
        a = NodeProfile(0, 0, {0})
        b = NodeProfile(1, 1, {0, 1})
        u = UtilityFunction(rates)
        assert u(a, b) == pytest.approx(0.5)
        rates.update(np.array([1.0, 3.0]))
        assert u(a, b) == pytest.approx(0.25)

    def test_cache_overflow_clears(self):
        u = UtilityFunction(max_cache=2)
        ps = [NodeProfile(i, i, {i}) for i in range(4)]
        for i in range(3):
            u(ps[i], ps[(i + 1) % 4])
        assert u.cache_info()["pairs"] <= 2

    def test_clear_cache(self):
        p, q, _ = profiles()
        u = UtilityFunction()
        u(p, q)
        u.clear_cache()
        assert u.cache_info() == {"pairs": 0, "sums": 0}


class TestPublicationRates:
    def test_uniform(self):
        r = PublicationRates.uniform(5, 2.0)
        assert r.n_topics == 5
        assert r.rate(3) == 2.0
        assert r.is_uniform()

    def test_sum_over(self):
        r = PublicationRates(np.array([1.0, 2.0, 3.0]))
        assert r.sum_over({0, 2}) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PublicationRates(np.array([[1.0]]))
        with pytest.raises(ValueError):
            PublicationRates(np.array([-1.0]))

    def test_update_shape_check(self):
        r = PublicationRates(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            r.update(np.array([1.0]))

    def test_not_uniform(self):
        assert not PublicationRates(np.array([1.0, 2.0])).is_uniform()

"""Tests for the Alg. 5 gateway election.

The tests drive `elect_round` directly over hand-built topologies with a
tiny id space, emulating the protocol's two-phase commit (all nodes read
the previous round's proposals).
"""

from repro.core.gateway import GatewayState, Proposal, elect_round
from repro.core.identifiers import IdSpace
from repro.core.routing_table import LinkKind, RoutingTable
from repro.gossip.view import Descriptor

SPACE = IdSpace(bits=8)
TOPIC = 1


class Cluster:
    """A hand-built cluster: nodes with fixed ids, undirected edges, all
    subscribed to TOPIC."""

    def __init__(self, ids, edges, topic_hash, depth=5, subscribed=None):
        self.ids = ids
        self.topic_hash = topic_hash
        self.depth = depth
        self.subscribed = subscribed if subscribed is not None else set(ids)
        self.states = {a: GatewayState(a, node_id) for a, node_id in ids.items()}
        self.rts = {a: RoutingTable(a, 16) for a in ids}
        adj = {a: set() for a in ids}
        for u, v in edges:
            adj[u].add(v)
            adj[v].add(u)
        for a, neigh in adj.items():
            self.rts[a].replace(
                [(Descriptor(b, ids[b]), LinkKind.FRIEND) for b in sorted(neigh)]
            )

    def subs_of(self, addr):
        return frozenset({TOPIC}) if addr in self.subscribed else frozenset()

    def run_round(self):
        results = {}
        for a in self.ids:
            if a not in self.subscribed:
                continue
            results[a] = elect_round(
                SPACE,
                self.states[a],
                frozenset({TOPIC}),
                self.rts[a],
                neighbor_subscriptions=self.subs_of,
                neighbor_proposal=lambda n, t: self.states[n].get(t),
                topic_ids=lambda t: self.topic_hash,
                depth=self.depth,
            )
        for a, props in results.items():
            self.states[a].proposals = props

    def run(self, rounds):
        for _ in range(rounds):
            self.run_round()

    def gateways(self):
        return sorted(
            a
            for a in self.subscribed
            if self.states[a].get(TOPIC) and self.states[a].get(TOPIC).gw_addr == a
        )


class TestSingleCluster:
    def test_converges_to_closest_id(self):
        # Path 0-1-2-3; node 3's id (98) is closest to hash 100.
        c = Cluster(
            ids={0: 10, 1: 40, 2: 70, 3: 98},
            edges=[(0, 1), (1, 2), (2, 3)],
            topic_hash=100,
        )
        c.run(5)
        assert c.gateways() == [3]
        # Everyone's proposal names node 3 with correct hop counts.
        assert c.states[0].get(TOPIC).gw_addr == 3
        assert c.states[0].get(TOPIC).hops == 3
        assert c.states[2].get(TOPIC).hops == 1

    def test_isolated_node_is_its_own_gateway(self):
        c = Cluster(ids={0: 10}, edges=[], topic_hash=100)
        c.run(2)
        assert c.gateways() == [0]

    def test_depth_bound_spawns_multiple_gateways(self):
        # A long path with the best id at one end and d=2: far nodes must
        # elect their own gateways (paper: #gateways ∝ diameter / d).
        ids = {i: 200 - 10 * i for i in range(8)}  # node 0 closest to 200
        edges = [(i, i + 1) for i in range(7)]
        c = Cluster(ids=ids, edges=edges, topic_hash=200, depth=2)
        c.run(10)
        gws = c.gateways()
        assert 0 in gws
        assert len(gws) >= 2
        # Every node is within depth of its proposed gateway.
        for a in ids:
            assert c.states[a].get(TOPIC).hops < 2

    def test_two_phase_round_reads_previous_state(self):
        # Proposals spread exactly one hop per round: round 1 initialises
        # everyone to self; in round 2, node 0 can only have adopted node
        # 1's round-1 self-proposal, never node 3's id from two hops away.
        c = Cluster(
            ids={0: 10, 1: 40, 2: 70, 3: 98},
            edges=[(0, 1), (1, 2), (2, 3)],
            topic_hash=100,
        )
        c.run(1)
        assert c.states[0].get(TOPIC).gw_addr == 0  # only self known
        c.run(1)
        assert c.states[0].get(TOPIC).gw_addr == 1  # one hop of spread

    def test_gateway_topics_accessor(self):
        c = Cluster(ids={0: 10, 1: 99}, edges=[(0, 1)], topic_hash=100)
        c.run(3)
        assert c.states[1].gateway_topics() == [TOPIC]
        assert c.states[0].gateway_topics() == []


class TestPartitionedClusters:
    def test_each_component_elects_a_gateway(self):
        # Two components: {0,1} and {2,3}.
        c = Cluster(
            ids={0: 10, 1: 40, 2: 70, 3: 98},
            edges=[(0, 1), (2, 3)],
            topic_hash=100,
        )
        c.run(5)
        assert c.gateways() == [1, 3]

    def test_uninterested_neighbors_do_not_relay_proposals(self):
        # 0 - X - 2 where X is not subscribed: 0 and 2 stay separate.
        c = Cluster(
            ids={0: 10, 5: 50, 2: 98},
            edges=[(0, 5), (5, 2)],
            topic_hash=100,
            subscribed={0, 2},
        )
        c.run(5)
        assert c.gateways() == [0, 2]


class TestFailureRecovery:
    def test_new_gateway_after_eviction(self):
        c = Cluster(
            ids={0: 10, 1: 40, 2: 70, 3: 98},
            edges=[(0, 1), (1, 2), (2, 3)],
            topic_hash=100,
        )
        c.run(5)
        assert c.gateways() == [3]
        # Node 3 dies: neighbors evict it from their routing tables and
        # drop it from the subscribed set.
        c.subscribed.discard(3)
        for a in (0, 1, 2):
            c.rts[a].remove(3)
        c.run(5)
        assert c.gateways() == [2]


class TestProposal:
    def test_is_self_proposal(self):
        p = Proposal(3, 98, 3, 0)
        assert p.is_self_proposal(3)
        assert not p.is_self_proposal(2)

    def test_state_clear(self):
        s = GatewayState(1, 40)
        s.proposals[TOPIC] = Proposal(1, 40, 1, 0)
        s.clear()
        assert s.get(TOPIC) is None

"""The overload_sweep scenario: row contract, determinism, cache/resume,
and the graceful-degradation shape at test scale.
"""

import json

import numpy as np
import pytest

from repro.experiments import scenarios
from repro.experiments.executor import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    run_sweep,
)
from repro.experiments.overload import measure_under_load, overload_sweep_spec
from repro.experiments.runner import build_vitis
from repro.experiments.scenarios import make_subscriptions
from repro.workloads.publication import sample_topics

# Tiny sizes: these exercise the plumbing, not the physics.
OVERLOAD_KW = dict(n_nodes=40, n_topics=100, pub_rates=(4,),
                   capacities=(0, 24), service_rate=18, load_cycles=3)

EXTRA_KEYS = {
    "shed_fraction", "data_shed_fraction", "control_survival", "shed_total",
    "backpressure", "deferred", "hotspot_load", "hotspot_shed",
}


class TestMeasureUnderLoad:
    def test_matches_the_manual_loop_without_capacity(self):
        """With no capacity attached, measure_under_load is exactly the
        plain cycle+publish loop — same RNG stream, same records."""
        subs = make_subscriptions("high", 40, 100, seed=0)
        a = build_vitis(subs, seed=0)
        b = build_vitis(subs, seed=0)

        col = measure_under_load(a, events_per_cycle=4, cycles=3, seed=9)

        rng = np.random.default_rng(9)
        manual = []
        candidates = [t for t in b.topics() if b.subscribers(t)]
        for _ in range(3):
            b.run_cycles(1)
            for topic in sample_topics(b.rates, 4, rng, restrict=candidates):
                subs_t = sorted(b.subscribers(topic))
                if not subs_t:
                    continue
                pub = subs_t[int(rng.integers(len(subs_t)))]
                manual.append(b.publish(topic, pub))
        assert len(col.records) == len(manual)
        assert [r.delivered_hops for r in col.records] \
            == [r.delivered_hops for r in manual]
        assert col.summary() == _summarize(manual)


def _summarize(records):
    from repro.sim.metrics import MetricsCollector

    c = MetricsCollector()
    c.extend(records)
    return c.summary()


class TestSweepSpec:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown systems"):
            overload_sweep_spec(systems=("vitis", "scribe"))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            overload_sweep_spec(policy="drop_everything")

    def test_trial_count_and_keys(self):
        sweep = overload_sweep_spec(pub_rates=(2, 4), capacities=(0, 8),
                                    systems=("vitis",))
        assert len(sweep.trials) == 4
        assert [t.key for t in sweep.trials] == [
            ("vitis", 2, 0), ("vitis", 2, 8), ("vitis", 4, 0), ("vitis", 4, 8),
        ]

    def test_registered_in_the_scenario_table(self):
        assert "overload_sweep" in scenarios.SCENARIOS
        sweep = scenarios.SCENARIOS["overload_sweep"].sweep(seed=0, scale=0.2)
        assert sweep.trials  # scaled sizes still build a sweep


class TestSweepRows:
    @pytest.fixture(scope="class")
    def rows(self):
        return scenarios.overload_sweep(seed=2, **OVERLOAD_KW)

    def test_row_grid_and_keys(self, rows):
        assert len(rows) == 4  # 2 systems x 1 rate x 2 capacities
        for row in rows:
            assert EXTRA_KEYS <= set(row)
            assert {"system", "pub_rate", "capacity", "policy",
                    "hit_ratio"} <= set(row)
        # Rectangular rows: the CSV writer keys off the first row.
        assert all(set(r) == set(rows[0]) for r in rows)

    def test_capacity_off_rows_are_clean(self, rows):
        for row in rows:
            if row["capacity"] == 0:
                assert row["hit_ratio"] == 1.0
                assert row["shed_fraction"] == 0.0
                assert row["control_survival"] == 1.0
                assert row["shed_total"] == 0

    def test_bounded_rows_shed_data_before_control(self, rows):
        bounded = [r for r in rows if r["capacity"]]
        assert any(r["shed_total"] > 0 for r in bounded)
        for r in bounded:
            if r["shed_total"]:
                assert r["data_shed_fraction"] >= 1.0 - r["control_survival"]

    def test_hit_ratio_monotone_in_capacity(self, rows):
        for system in ("vitis", "rvr"):
            by_cap = {r["capacity"]: r["hit_ratio"]
                      for r in rows if r["system"] == system}
            # capacity 0 = unbounded: the top of the ladder.
            assert by_cap[0] >= by_cap[24]

    def test_serial_parallel_and_cache_identical(self, tmp_path, rows):
        par = scenarios.overload_sweep(
            seed=2, executor=ParallelExecutor(2), **OVERLOAD_KW
        )
        assert json.dumps(rows, sort_keys=True) == json.dumps(par, sort_keys=True)

        cache = ResultCache(tmp_path)
        sweep = overload_sweep_spec(seed=2, **OVERLOAD_KW)
        first = run_sweep(sweep, cache=cache)
        resumed = run_sweep(overload_sweep_spec(seed=2, **OVERLOAD_KW),
                            executor=SerialExecutor(), cache=cache, resume=True)
        assert json.dumps(first, sort_keys=True) == json.dumps(rows, sort_keys=True)
        assert json.dumps(resumed, sort_keys=True) == json.dumps(rows, sort_keys=True)

"""The capacity layer's attach/detach contract and zero-cost-off parity.

Mirrors tests/faults/test_protocol_healing.py: with no model attached —
or one attached and then detached — every code path, output, and RNG
draw must be exactly the pre-capacity build's.
"""

import pytest

from repro.baselines.rvr import RvrProtocol
from repro.core.config import VitisConfig
from repro.core.deployment import DeployedVitis
from repro.core.protocol import VitisProtocol
from repro.experiments.runner import measure
from repro.sim.capacity import CapacityModel, NodeCapacity
from tests.conftest import small_subscriptions


class _PoisonedRng:
    def random(self):  # pragma: no cover - failure path only
        raise AssertionError("deterministic capacity policy must not draw")


def _small_vitis(seed=5, cycles=40):
    p = VitisProtocol(
        small_subscriptions(seed=seed),
        VitisConfig(rt_size=10, n_sw_links=1),
        seed=seed,
        election_every=0,
        relay_every=0,
    )
    p.run_cycles(cycles)
    p.finalize()
    return p


def _small_rvr(seed=5, cycles=40):
    p = RvrProtocol(
        small_subscriptions(seed=seed),
        VitisConfig(rt_size=10),
        seed=seed,
        relay_every=0,
    )
    p.run_cycles(cycles)
    p.finalize()
    return p


def _drive(p, cycles=5, events=30):
    """A workload that exercises every gated site: heartbeats (cycles),
    lookups, and dissemination."""
    p.run_cycles(cycles)
    col = measure(p, events, seed=1)
    return col.summary(), dict(p.network.sent), p.fault_retries


class TestAttachCapacity:
    def test_attach_reaches_the_network(self):
        p = _small_vitis(cycles=5)
        model = CapacityModel(NodeCapacity())
        p.attach_capacity(model)
        assert p.capacity is model and p.network.capacity is model
        assert model.telemetry is p.telemetry

    def test_detach_restores_the_elastic_transport(self):
        p = _small_vitis(cycles=5)
        p.attach_capacity(CapacityModel(NodeCapacity()))
        p.attach_capacity(None)
        assert p.capacity is None and p.network.capacity is None

    def test_deployed_attach_detach(self):
        d = DeployedVitis(
            small_subscriptions(seed=2), VitisConfig(rt_size=10), seed=2
        )
        model = CapacityModel(NodeCapacity())
        d.attach_capacity(model)
        assert d.capacity is model and d.network.capacity is model
        d.attach_capacity(None)
        assert d.capacity is None and d.network.capacity is None


class TestZeroCostOff:
    @pytest.mark.parametrize("build", [_small_vitis, _small_rvr])
    def test_attach_then_detach_leaves_no_trace(self, build):
        baseline = _drive(build())
        p = build()
        p.attach_capacity(CapacityModel(NodeCapacity(), rng=_PoisonedRng()))
        p.attach_capacity(None)
        assert _drive(p) == baseline

    @pytest.mark.parametrize("build", [_small_vitis, _small_rvr])
    def test_unlimited_capacity_is_transparent(self, build):
        """A model that admits everything must not change a single
        metric, message tally, or (deterministic policies) RNG draw —
        only the gated sites' accounting differs, and that is additive.
        """
        baseline_summary, _, _ = _drive(build())
        p = build()
        model = CapacityModel(
            NodeCapacity(service_rate=10_000, queue_depth=1_000_000,
                         policy="drop_lowest"),
            rng=_PoisonedRng(),
        )
        p.attach_capacity(model)
        summary, _, _ = _drive(p)
        assert summary == baseline_summary
        assert sum(model.shed.values()) == 0
        assert model.backpressure_signals == 0
        assert sum(model.offered.values()) > 0  # the gates did run

    def test_tight_capacity_changes_outcomes(self):
        """Sanity check that the parity above is meaningful: a starved
        inbox must actually shed and dent delivery."""
        p = _small_vitis()
        model = CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=2, policy="drop_lowest"),
            rng=_PoisonedRng(),
        )
        p.attach_capacity(model)
        summary, _, _ = _drive(p)
        assert sum(model.shed.values()) > 0
        assert summary["hit_ratio"] < 1.0

"""Tests for the synthetic Twitter trace."""

import numpy as np
import pytest

from repro.workloads.twitter import TwitterTrace, powerlaw_mle


@pytest.fixture(scope="module")
def trace():
    return TwitterTrace(2000, seed=3)


class TestGeneration:
    def test_deterministic(self):
        a = TwitterTrace(300, seed=1)
        b = TwitterTrace(300, seed=1)
        assert a.following == b.following

    def test_seed_changes_graph(self):
        a = TwitterTrace(300, seed=1)
        b = TwitterTrace(300, seed=2)
        assert a.following != b.following

    def test_no_self_follows(self, trace):
        for u, f in trace.following.items():
            assert u not in f

    def test_followers_is_inverse(self, trace):
        for u, f in trace.following.items():
            for v in f:
                assert u in trace.followers[v]

    def test_out_degrees_respect_floor_and_cap(self, trace):
        outs = trace.out_degrees()
        assert min(outs) >= 1
        assert max(outs) <= trace.max_out

    def test_validation(self):
        with pytest.raises(ValueError):
            TwitterTrace(1)
        with pytest.raises(ValueError):
            TwitterTrace(10, alpha=1.0)
        with pytest.raises(ValueError):
            TwitterTrace(10, min_out=0)


class TestStatistics:
    def test_alpha_close_to_paper(self, trace):
        s = trace.summary()
        assert 1.3 < s["alpha_in"] < 2.1
        assert 1.3 < s["alpha_out"] < 2.1

    def test_heavy_tail_present(self, trace):
        ins = trace.in_degrees()
        assert max(ins) > 10 * np.mean(ins)

    def test_summary_consistency(self, trace):
        s = trace.summary()
        assert s["relations"] == trace.n_relations
        assert s["mean_in_degree"] == pytest.approx(s["mean_out_degree"])

    def test_degree_histogram_sums_to_population(self, trace):
        for kind in ("in", "out"):
            hist = trace.degree_histogram(kind)
            assert sum(hist.values()) == trace.n_users


class TestPowerlawMLE:
    def test_recovers_known_exponent(self):
        rng = np.random.default_rng(0)
        alpha = 2.5
        xs = (1.0 - rng.random(50000)) ** (-1.0 / (alpha - 1.0))
        # Flooring to integers biases the continuous MLE low near the
        # cut-off; fit the tail (xmin=10) where discretisation is mild.
        est = powerlaw_mle(np.floor(10 * xs).astype(int), xmin=10)
        assert est == pytest.approx(alpha, abs=0.25)

    def test_empty_returns_nan(self):
        assert np.isnan(powerlaw_mle([], xmin=1))
        assert np.isnan(powerlaw_mle([0], xmin=1))


class TestBfsSample:
    def test_target_size_reached(self, trace):
        sample = trace.bfs_sample(300, seed=1)
        assert 300 <= sample.n_nodes <= 310

    def test_dense_reindexing(self, trace):
        sample = trace.bfs_sample(300, seed=1)
        subs = sample.subscriptions()
        assert all(0 <= t < sample.n_nodes for s in subs for t in s)

    def test_subscriptions_match_graph(self, trace):
        sample = trace.bfs_sample(300, seed=1)
        for i, u in enumerate(sample.users):
            original = {v for v in trace.following[u] if v in sample.index}
            assert sample.following[i] == frozenset(sample.index[v] for v in original)

    def test_sample_preserves_degree_law(self, trace):
        """Section IV-E: the sampling must preserve the distribution shape."""
        sample = trace.bfs_sample(600, seed=1)
        s = sample.summary()
        assert 1.2 < s["alpha_in"] < 2.3

    def test_deterministic(self, trace):
        a = trace.bfs_sample(200, seed=5)
        b = trace.bfs_sample(200, seed=5)
        assert a.users == b.users

    def test_mean_subscriptions_positive(self, trace):
        assert trace.bfs_sample(300, seed=1).mean_subscriptions() > 1

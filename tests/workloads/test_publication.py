"""Tests for publication-rate models."""

import numpy as np
import pytest

from repro.workloads.publication import power_law_rates, sample_topics, uniform_rates


class TestUniform:
    def test_all_equal(self):
        r = uniform_rates(10, rate=2.0)
        assert r.is_uniform()
        assert r.rate(7) == 2.0


class TestPowerLaw:
    def test_normalised_mean_is_one(self):
        for alpha in (0.3, 1.0, 3.0):
            r = power_law_rates(100, alpha)
            assert np.mean(r.rates) == pytest.approx(1.0)

    def test_skew_grows_with_alpha(self):
        flat = power_law_rates(100, 0.3)
        steep = power_law_rates(100, 3.0)
        assert steep.rates.max() > flat.rates.max()
        # Top topic share of all events:
        assert steep.rates.max() / steep.rates.sum() > 0.5  # "almost all on one topic"

    def test_alpha_zero_is_uniform(self):
        r = power_law_rates(10, 0.0)
        assert r.is_uniform()

    def test_permutation_preserves_multiset(self):
        a = power_law_rates(50, 1.5, seed=None)
        b = power_law_rates(50, 1.5, seed=9)
        assert sorted(a.rates) == pytest.approx(sorted(b.rates))
        assert list(a.rates) != list(b.rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_rates(0, 1.0)
        with pytest.raises(ValueError):
            power_law_rates(10, -1.0)


class TestSampleTopics:
    def test_respects_restriction(self):
        rng = np.random.default_rng(1)
        r = power_law_rates(100, 1.0)
        drawn = sample_topics(r, 50, rng, restrict=[3, 5, 9])
        assert set(drawn) <= {3, 5, 9}

    def test_hot_topics_drawn_more(self):
        rng = np.random.default_rng(1)
        r = power_law_rates(50, 2.0, seed=None)  # rank == topic id
        drawn = sample_topics(r, 2000, rng)
        counts = np.bincount(drawn, minlength=50)
        assert counts[0] > counts[25]

    def test_zero_rate_restriction_rejected(self):
        rng = np.random.default_rng(1)
        r = power_law_rates(10, 1.0, seed=None)
        r.update(np.zeros(10))
        with pytest.raises(ValueError):
            sample_topics(r, 5, rng)

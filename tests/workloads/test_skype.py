"""Tests for the synthetic Skype churn trace."""

import pytest

from repro.workloads.skype import SkypeTrace


@pytest.fixture(scope="module")
def trace():
    return SkypeTrace(n_nodes=150, horizon=400, flash_crowd_at=250, seed=2)


class TestGeneration:
    def test_deterministic(self):
        a = SkypeTrace(n_nodes=50, horizon=100, seed=1)
        b = SkypeTrace(n_nodes=50, horizon=100, seed=1)
        assert a.sessions == b.sessions

    def test_sessions_well_formed(self, trace):
        for node, start, end in trace.sessions:
            assert 0 <= start < end <= trace.horizon
            assert 0 <= node < trace.n_nodes

    def test_sessions_per_node_disjoint(self, trace):
        per_node = {}
        for node, start, end in trace.sessions:
            per_node.setdefault(node, []).append((start, end))
        for sessions in per_node.values():
            sessions.sort()
            for (s1, e1), (s2, e2) in zip(sessions, sessions[1:]):
                assert e1 <= s2

    def test_validation(self):
        with pytest.raises(ValueError):
            SkypeTrace(n_nodes=0)
        with pytest.raises(ValueError):
            SkypeTrace(n_nodes=10, flash_crowd_fraction=1.5)


class TestPopulationDynamics:
    def test_initial_population(self, trace):
        # Half the non-crowd pool starts online.
        pop0 = trace.population_at(0.0)
        non_crowd = trace.n_nodes * (1 - trace.flash_crowd_fraction)
        assert pop0 == pytest.approx(non_crowd * 0.5, rel=0.35)

    def test_flash_crowd_spike(self, trace):
        before = trace.population_at(trace.flash_crowd_at - 5)
        after = trace.population_at(trace.flash_crowd_at + 2)
        assert after > before * 1.5

    def test_crowd_nodes_absent_before(self, trace):
        crowd_start = trace.n_nodes - int(trace.n_nodes * trace.flash_crowd_fraction)
        for node, start, end in trace.sessions:
            if node >= crowd_start:
                assert start >= trace.flash_crowd_at

    def test_no_flash_crowd_mode(self):
        t = SkypeTrace(n_nodes=60, horizon=200, flash_crowd_at=None, seed=1)
        series = [p for _, p in t.population_series(20)]
        assert max(series) < 60  # no synchronized spike to full pool

    def test_population_series_resolution(self, trace):
        series = trace.population_series(resolution=100.0)
        assert len(series) == 5  # 0,100,200,300,400

    def test_mean_session_positive(self, trace):
        assert trace.mean_session_length() > 0


class TestScheduleExport:
    def test_schedule_event_count(self, trace):
        sched = trace.schedule()
        assert len(sched) == 2 * len(trace.sessions)

    def test_time_scaling(self, trace):
        sched = trace.schedule(time_scale=2.0)
        assert sched.horizon == pytest.approx(2.0 * max(e for _, _, e in trace.sessions))

"""Tests for the synthetic subscription models."""

import pytest

from repro.workloads.subscriptions import (
    bucket_subscriptions,
    high_correlation_subscriptions,
    low_correlation_subscriptions,
    random_subscriptions,
)


def jaccard_samples(subs, pairs=3000, seed=0):
    import random

    rng = random.Random(seed)
    out = []
    n = len(subs)
    for _ in range(pairs):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        inter = len(subs[a] & subs[b])
        union = len(subs[a] | subs[b])
        out.append(inter / union if union else 0)
    return out


class TestRandom:
    def test_shape(self):
        subs = random_subscriptions(50, n_topics=500, per_node=20, seed=1)
        assert len(subs) == 50
        assert all(len(s) == 20 for s in subs)
        assert all(0 <= t < 500 for s in subs for t in s)

    def test_deterministic(self):
        a = random_subscriptions(10, 100, 5, seed=3)
        b = random_subscriptions(10, 100, 5, seed=3)
        assert a == b

    def test_seed_changes_output(self):
        a = random_subscriptions(10, 100, 5, seed=3)
        b = random_subscriptions(10, 100, 5, seed=4)
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            random_subscriptions(5, n_topics=10, per_node=20)


class TestBuckets:
    def test_paper_shape_low(self):
        subs = low_correlation_subscriptions(50, n_topics=5000, seed=1)
        assert all(len(s) == 50 for s in subs)

    def test_paper_shape_high(self):
        subs = high_correlation_subscriptions(50, n_topics=5000, seed=1)
        assert all(len(s) == 50 for s in subs)

    def test_high_topics_span_two_buckets(self):
        subs = high_correlation_subscriptions(50, n_topics=5000, seed=1)
        for s in subs:
            buckets = {t // 50 for t in s}
            assert len(buckets) == 2

    def test_low_topics_span_five_buckets(self):
        subs = low_correlation_subscriptions(50, n_topics=5000, seed=1)
        for s in subs:
            buckets = {t // 50 for t in s}
            assert len(buckets) == 5

    def test_correlation_ordering(self):
        """The paper's point: high > low > random interest *correlation*.

        All three patterns share the same uniform average topic popularity
        (and hence nearly identical mean pairwise Jaccard); what grows
        with the correlation level is the dispersion — some pairs become
        very similar — which is exactly what Eq. 1 exploits.  Variance of
        the pairwise Jaccard captures that.
        """
        import statistics

        n, topics = 150, 1000
        var = {
            "rand": statistics.variance(jaccard_samples(random_subscriptions(n, topics, 50, seed=2))),
            "low": statistics.variance(jaccard_samples(low_correlation_subscriptions(n, topics, seed=2))),
            "high": statistics.variance(jaccard_samples(high_correlation_subscriptions(n, topics, seed=2))),
        }
        assert var["high"] > var["low"] > var["rand"]

    def test_scaled_down_topics_keep_bucket_size(self):
        subs = high_correlation_subscriptions(20, n_topics=500, seed=1)
        assert all(len(s) == 50 for s in subs)
        for s in subs:
            assert len({t // 50 for t in s}) == 2

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            bucket_subscriptions(5, n_topics=99, n_buckets=10)
        with pytest.raises(ValueError):
            bucket_subscriptions(5, n_topics=100, n_buckets=10, topics_per_bucket=20)
        with pytest.raises(ValueError):
            bucket_subscriptions(5, n_topics=100, n_buckets=10, buckets_per_node=11)

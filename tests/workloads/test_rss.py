"""Tests for the RSS/micronews-like workload."""

import numpy as np
import pytest

from repro.workloads.rss import RssWorkload


@pytest.fixture(scope="module")
def workload():
    return RssWorkload(n_users=400, n_feeds=300, seed=5)


class TestGeneration:
    def test_deterministic(self):
        a = RssWorkload(100, 200, seed=1)
        b = RssWorkload(100, 200, seed=1)
        assert a.subscriptions() == b.subscriptions()
        assert a.memberships == b.memberships

    def test_seed_changes_output(self):
        a = RssWorkload(100, 200, seed=1)
        b = RssWorkload(100, 200, seed=2)
        assert a.subscriptions() != b.subscriptions()

    def test_feeds_in_range(self, workload):
        for s in workload.subscriptions():
            assert all(0 <= f < workload.n_feeds for f in s)

    def test_every_user_subscribes(self, workload):
        assert all(len(s) >= 1 for s in workload.subscriptions())

    def test_validation(self):
        with pytest.raises(ValueError):
            RssWorkload(0)
        with pytest.raises(ValueError):
            RssWorkload(10, community_bias=2.0)
        with pytest.raises(ValueError):
            RssWorkload(10, mean_subscriptions=0.5)


class TestStatistics:
    def test_zipf_popularity(self, workload):
        """Top feeds vastly more popular than median — unlike the
        uniform-popularity bucket models."""
        s = workload.summary()
        assert s["max_audience"] > 5 * max(1.0, s["median_audience"])

    def test_subscription_counts_skewed(self, workload):
        counts = [len(x) for x in workload.subscriptions()]
        assert max(counts) > 2 * np.mean(counts)

    def test_community_correlation(self, workload):
        """Same-community pairs share more feeds than cross-community
        pairs — the co-subscription correlation the paper's premise
        needs."""
        import random

        rng = random.Random(3)
        subs = workload.subscriptions()
        same, cross = [], []
        users = list(range(workload.n_users))
        for _ in range(4000):
            a, b = rng.choice(users), rng.choice(users)
            if a == b:
                continue
            inter = len(subs[a] & subs[b])
            union = len(subs[a] | subs[b])
            j = inter / union if union else 0.0
            if workload.memberships[a] == workload.memberships[b]:
                same.append(j)
            else:
                cross.append(j)
        assert np.mean(same) > 1.5 * np.mean(cross)

    def test_rates_track_popularity(self, workload):
        rates = workload.rates()
        assert rates.n_topics == workload.n_feeds
        assert rates.rate(0) > rates.rate(workload.n_feeds - 1)
        assert np.mean(rates.rates) == pytest.approx(1.0)


class TestEndToEnd:
    def test_vitis_on_rss_workload(self):
        """The in-between regime: skewed popularity + skewed correlation.
        Vitis must still deliver everything with low overhead."""
        from repro.core.config import VitisConfig
        from repro.experiments.runner import build_vitis, measure

        w = RssWorkload(n_users=120, n_feeds=150, seed=7)
        vitis = build_vitis(
            w.subscriptions(), VitisConfig(rt_size=10), seed=7, rates=w.rates()
        )
        col = measure(vitis, 150, seed=8)
        assert col.hit_ratio() == pytest.approx(1.0, abs=0.01)
        assert col.traffic_overhead_pct() < 35.0

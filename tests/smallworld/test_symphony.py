"""Tests for Symphony harmonic long links."""

import math
import random

import numpy as np

from repro.core.identifiers import IdSpace
from repro.gossip.view import Descriptor
from repro.smallworld.symphony import (
    closest_to_target,
    draw_sw_target,
    harmonic_fraction,
)


class TestHarmonicFraction:
    def test_range(self, rng):
        n = 1000
        for _ in range(500):
            x = harmonic_fraction(rng, n)
            assert 1 / n <= x <= 1.0

    def test_distribution_shape(self):
        """The harmonic pdf p(x)=1/(x ln n) puts equal mass in each
        logarithmic decade: check the log of the draws is ~uniform."""
        rng = random.Random(7)
        n = 2**16
        draws = [harmonic_fraction(rng, n) for _ in range(4000)]
        logs = np.log(draws) / math.log(n) + 1.0  # maps to [0, 1]
        hist, _ = np.histogram(logs, bins=4, range=(0, 1))
        # Each quarter should hold roughly 1000 draws.
        assert all(800 < h < 1200 for h in hist)

    def test_small_n_clamped(self, rng):
        # n below 2 must not blow up (log(1) == 0 division).
        x = harmonic_fraction(rng, 1)
        assert 0 < x <= 1.0

    def test_deterministic_given_rng(self):
        a = harmonic_fraction(random.Random(3), 100)
        b = harmonic_fraction(random.Random(3), 100)
        assert a == b


class TestDrawTarget:
    def test_target_in_space(self, rng):
        space = IdSpace(bits=16)
        for _ in range(100):
            t = draw_sw_target(space, 1234, rng, 500)
            assert 0 <= t < space.size

    def test_target_is_clockwise_offset(self):
        space = IdSpace(bits=16)
        rng = random.Random(1)
        node = 1000
        t = draw_sw_target(space, node, rng, 500)
        assert t != node  # delta floored at 1


class TestClosestToTarget:
    def test_picks_minimal_circular_distance(self):
        space = IdSpace(bits=8)
        cands = [Descriptor(1, 10), Descriptor(2, 100), Descriptor(3, 250)]
        assert closest_to_target(space, 0, cands).address == 3  # dist 6 wraps

    def test_empty(self):
        assert closest_to_target(IdSpace(8), 0, []) is None

    def test_tie_broken_by_address(self):
        space = IdSpace(bits=8)
        cands = [Descriptor(9, 10), Descriptor(2, 30)]
        assert closest_to_target(space, 20, cands).address == 2

"""Tests for greedy routing."""

import math
import random

from repro.core.identifiers import IdSpace
from repro.smallworld.routing import greedy_route


def make_ring_overlay(n, space, extra_links=0, seed=1):
    """A correct ring (each node links to succ and pred) plus optional
    random long links.  Returns (ids, neighbors)."""
    rng = random.Random(seed)
    ids = {a: space.hash_key(("n", a)) for a in range(n)}
    order = sorted(ids, key=lambda a: ids[a])
    neighbors = {a: set() for a in ids}
    for i, a in enumerate(order):
        succ = order[(i + 1) % n]
        pred = order[(i - 1) % n]
        neighbors[a].update({succ, pred})
    for a in ids:
        for _ in range(extra_links):
            b = rng.randrange(n)
            if b != a:
                neighbors[a].add(b)
    return ids, neighbors


def route(space, ids, neighbors, start, target_id, alive=lambda a: True, max_hops=256):
    return greedy_route(
        space,
        target_id,
        start,
        ids[start],
        neighbors_of=lambda a: [(b, ids[b]) for b in neighbors[a]],
        is_alive=alive,
        max_hops=max_hops,
    )


class TestGreedyRouting:
    def test_reaches_global_rendezvous_on_ring(self):
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(40, space)
        target = space.hash_key("some-topic")
        truth = min(ids, key=lambda a: (space.distance(ids[a], target), a))
        result = route(space, ids, neighbors, start=0, target_id=target)
        assert result.success
        assert result.rendezvous == truth

    def test_all_starts_agree_on_rendezvous(self):
        """Lookup consistency: every node's lookup ends at the same node."""
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(30, space, extra_links=2)
        target = space.hash_key("topic-7")
        ends = {route(space, ids, neighbors, s, target).rendezvous for s in ids}
        assert len(ends) == 1

    def test_exact_id_match_terminates(self):
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(10, space)
        some = next(iter(ids))
        result = route(space, ids, neighbors, some, ids[some])
        assert result.success and result.path == [some] and result.hops == 0

    def test_long_links_shorten_paths(self):
        space = IdSpace(bits=32)
        n = 200
        ids, ring_only = make_ring_overlay(n, space, extra_links=0)
        _, with_links = make_ring_overlay(n, space, extra_links=3)
        target = space.hash_key("t")
        hops_ring = route(space, ids, ring_only, 0, target).hops
        hops_sw = route(space, ids, with_links, 0, target).hops
        assert hops_sw <= hops_ring

    def test_path_has_no_repeats(self):
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(50, space, extra_links=2)
        result = route(space, ids, neighbors, 3, space.hash_key("x"))
        assert len(result.path) == len(set(result.path))

    def test_dead_start_fails(self):
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(10, space)
        result = route(space, ids, neighbors, 0, 123, alive=lambda a: False)
        assert not result.success and result.path == []

    def test_dead_neighbors_are_skipped(self):
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(30, space, extra_links=3)
        dead = {5, 6, 7}
        result = route(
            space, ids, neighbors, 0, space.hash_key("y"), alive=lambda a: a not in dead
        )
        assert result.success
        assert not dead.intersection(result.path)

    def test_max_hops_bound(self):
        space = IdSpace(bits=32)
        ids, neighbors = make_ring_overlay(100, space)
        result = route(space, ids, neighbors, 0, space.hash_key("z"), max_hops=2)
        assert len(result.path) <= 3

    def test_hop_count_scales_logarithmically(self):
        """With k harmonic-ish links greedy routing is polylog; sanity-check
        the path length stays well under N/2 (ring-walk length)."""
        space = IdSpace(bits=32)
        n = 256
        ids, neighbors = make_ring_overlay(n, space, extra_links=4)
        total = 0
        for s in list(ids)[:20]:
            r = route(space, ids, neighbors, s, space.hash_key(("t", s)))
            assert r.success
            total += r.hops
        assert total / 20 < 4 * math.log2(n)

"""Tests for ring maintenance helpers."""

from repro.core.identifiers import IdSpace
from repro.gossip.view import Descriptor
from repro.smallworld.ring import (
    find_predecessor,
    find_successor,
    is_ring_converged,
    ring_edges,
)

SPACE = IdSpace(bits=8)  # size 256 for readable tests


def d(addr, node_id):
    return Descriptor(addr, node_id)


class TestSuccessorPredecessor:
    def test_successor_is_min_clockwise(self):
        cands = [d(1, 50), d(2, 200), d(3, 10)]
        assert find_successor(SPACE, 40, cands).address == 1

    def test_successor_wraps(self):
        cands = [d(1, 10), d(2, 30)]
        assert find_successor(SPACE, 250, cands).address == 1

    def test_predecessor_is_min_counterclockwise(self):
        cands = [d(1, 50), d(2, 200), d(3, 10)]
        assert find_predecessor(SPACE, 40, cands).address == 3

    def test_predecessor_wraps(self):
        cands = [d(1, 200), d(2, 100)]
        assert find_predecessor(SPACE, 50, cands).address == 1

    def test_same_id_skipped(self):
        cands = [d(1, 40), d(2, 60)]
        assert find_successor(SPACE, 40, cands).address == 2
        assert find_predecessor(SPACE, 40, [d(1, 40)]) is None

    def test_empty_candidates(self):
        assert find_successor(SPACE, 40, []) is None
        assert find_predecessor(SPACE, 40, []) is None

    def test_tie_broken_by_address(self):
        cands = [d(5, 50), d(2, 50)]
        assert find_successor(SPACE, 40, cands).address == 2


class TestRingEdges:
    def test_orders_by_id(self):
        ids = {10: 100, 11: 5, 12: 200}
        edges = ring_edges(ids)
        assert edges == [(11, 10), (10, 12), (12, 11)]

    def test_single_node(self):
        assert ring_edges({1: 5}) == [(1, 1)]


class TestConvergence:
    def test_converged_ring(self):
        ids = {0: 10, 1: 20, 2: 30}
        succ = {0: 1, 1: 2, 2: 0}
        assert is_ring_converged(ids, succ)

    def test_wrong_pointer_detected(self):
        ids = {0: 10, 1: 20, 2: 30}
        succ = {0: 2, 1: 2, 2: 0}
        assert not is_ring_converged(ids, succ)

    def test_missing_pointer_detected(self):
        ids = {0: 10, 1: 20, 2: 30}
        succ = {0: 1, 1: 2}
        assert not is_ring_converged(ids, succ)

    def test_trivial_populations(self):
        assert is_ring_converged({}, {})
        assert is_ring_converged({1: 5}, {})

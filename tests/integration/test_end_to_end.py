"""End-to-end assertions of the paper's headline claims, at small scale.

These are the qualitative results the reproduction must preserve:

1. Vitis and RVR always reach 100% hit ratio on a converged overlay.
2. Vitis's traffic overhead is far below RVR's, and shrinks further as
   subscription correlation grows.
3. OPT has zero overhead but its bounded-degree variant misses
   subscribers on a heavy-tailed (Twitter-like) workload.
4. Vitis's propagation delay is below RVR's (clusters flood; only
   inter-cluster hops pay routing cost).
5. The relay-load distribution is flatter under Vitis than RVR (Fig. 5).
"""

import pytest

from repro.core.config import VitisConfig
from repro.experiments.runner import build_opt, build_rvr, build_vitis, measure
from repro.workloads.subscriptions import (
    high_correlation_subscriptions,
    random_subscriptions,
)
from repro.workloads.twitter import TwitterTrace

N, TOPICS, EVENTS, SEED = 150, 400, 200, 11
CFG = VitisConfig(rt_size=10)


@pytest.fixture(scope="module")
def corr_subs():
    return high_correlation_subscriptions(N, TOPICS, seed=SEED)


@pytest.fixture(scope="module")
def rand_subs():
    return random_subscriptions(N, TOPICS, per_node=50, seed=SEED)


@pytest.fixture(scope="module")
def vitis_corr(corr_subs):
    p = build_vitis(corr_subs, CFG, seed=SEED)
    return measure(p, EVENTS, seed=SEED + 1)


@pytest.fixture(scope="module")
def vitis_rand(rand_subs):
    p = build_vitis(rand_subs, CFG, seed=SEED)
    return measure(p, EVENTS, seed=SEED + 1)


@pytest.fixture(scope="module")
def rvr_corr(corr_subs):
    p = build_rvr(corr_subs, CFG, seed=SEED)
    return measure(p, EVENTS, seed=SEED + 1)


class TestHitRatio:
    def test_vitis_full_hit(self, vitis_corr, vitis_rand):
        assert vitis_corr.hit_ratio() == 1.0
        assert vitis_rand.hit_ratio() == 1.0

    def test_rvr_full_hit(self, rvr_corr):
        assert rvr_corr.hit_ratio() == 1.0


class TestTrafficOverhead:
    def test_vitis_beats_rvr(self, vitis_corr, rvr_corr):
        """Paper abstract: 40–75% less relay traffic.  At our scale the
        gap is even wider; assert at least 40% less."""
        assert vitis_corr.traffic_overhead_pct() < 0.6 * rvr_corr.traffic_overhead_pct()

    def test_correlation_reduces_vitis_overhead(self, vitis_corr, vitis_rand):
        assert vitis_corr.traffic_overhead_pct() <= vitis_rand.traffic_overhead_pct()

    def test_vitis_random_still_beats_rvr(self, vitis_rand, rvr_corr):
        """Fig. 4a: even with random subscriptions Vitis stays well below
        RVR (the paper reports one third at 10k nodes; at this miniature
        scale random subscriptions fragment into more clusters, so the
        gap narrows — the ordering is what must hold)."""
        assert vitis_rand.traffic_overhead_pct() < 0.65 * rvr_corr.traffic_overhead_pct()


class TestDelay:
    def test_vitis_faster_than_rvr(self, vitis_corr, rvr_corr):
        assert vitis_corr.mean_delay() < rvr_corr.mean_delay()

    def test_delay_bounded_by_log2(self, vitis_corr):
        """Section III-B: O(log² N) worst case; sanity margin applied."""
        import math

        bound = math.log2(N) ** 2
        assert vitis_corr.max_delay() <= bound


class TestOverheadDistribution:
    def test_vitis_load_flatter_than_rvr(self, vitis_corr, rvr_corr):
        """Fig. 5: the fraction of nodes with >20% overhead drops under
        Vitis relative to RVR."""

        def frac_above(col, pct):
            per = col.per_node_overhead()
            if not per:
                return 0.0
            return sum(1 for v in per.values() if v > pct) / len(per)

        assert frac_above(vitis_corr, 20) < frac_above(rvr_corr, 20)


class TestOptOnTwitter:
    @pytest.fixture(scope="class")
    def twitter_subs(self):
        trace = TwitterTrace(1500, min_out=3, seed=SEED)
        return trace.bfs_sample(250, seed=SEED).subscriptions()

    def test_bounded_opt_misses_unbounded_hits(self, twitter_subs):
        bounded = build_opt(twitter_subs, VitisConfig(rt_size=8), seed=SEED, max_degree=8)
        col_b = measure(bounded, EVENTS, seed=SEED + 1, publisher="owner")
        unbounded = build_opt(twitter_subs, VitisConfig(rt_size=8), seed=SEED, max_degree=None)
        col_u = measure(unbounded, EVENTS, seed=SEED + 1, publisher="owner")
        assert col_b.hit_ratio() < 1.0
        assert col_u.hit_ratio() > col_b.hit_ratio()

    def test_opt_zero_overhead(self, twitter_subs):
        opt = build_opt(twitter_subs, VitisConfig(rt_size=8), seed=SEED, max_degree=8)
        col = measure(opt, 100, seed=SEED + 1, publisher="owner")
        assert col.traffic_overhead_pct() == 0.0

    def test_vitis_full_hit_on_twitter(self, twitter_subs):
        vitis = build_vitis(twitter_subs, VitisConfig(rt_size=10), seed=SEED)
        col = measure(vitis, 100, seed=SEED + 1, publisher="owner")
        assert col.hit_ratio() == pytest.approx(1.0, abs=0.01)

"""Golden-run byte-identity fixtures.

The hot-path refactor (cached id geometry, columnar views, dissemination
frontier, engine fast path) promises *byte-identical* results: same seeds
in, same reduced rows out.  These tests pin that promise to fingerprints
captured on the pre-refactor code — fig7 is the detached fast path,
fig4 exercises all three systems, and chaos_sweep composes faults,
capacity, detector and healing on top.

To regenerate after a deliberate behaviour change::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.experiments.scenarios import SCENARIOS
    from repro.experiments.executor import SerialExecutor, run_sweep
    from repro.obs.perf import rows_fingerprint
    spec = json.load(open("tests/fixtures/golden_rows.json"))
    for name, g in spec.items():
        if name.startswith("_"):
            continue
        sweep = SCENARIOS[name].sweep(seed=g["seed"], scale=g["scale"])
        rows = run_sweep(sweep, executor=SerialExecutor())
        g["rows"], g["rows_sha256"] = len(rows), rows_fingerprint(rows)
    json.dump(spec, open("tests/fixtures/golden_rows.json", "w"), indent=2)
    EOF
"""

import json
from pathlib import Path

import pytest

from repro.experiments.executor import SerialExecutor, run_sweep
from repro.experiments.scenarios import SCENARIOS
from repro.obs.perf import rows_fingerprint

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / "golden_rows.json"
GOLDEN = {
    k: v for k, v in json.loads(FIXTURE.read_text()).items() if not k.startswith("_")
}


@pytest.mark.slow
@pytest.mark.parametrize("scenario", sorted(GOLDEN))
def test_rows_sha256_matches_pre_refactor_fingerprint(scenario):
    golden = GOLDEN[scenario]
    sweep = SCENARIOS[scenario].sweep(seed=golden["seed"], scale=golden["scale"])
    rows = run_sweep(sweep, executor=SerialExecutor())
    assert len(rows) == golden["rows"]
    assert rows_fingerprint(rows) == golden["rows_sha256"], (
        f"{scenario} rows drifted from the pre-refactor golden fingerprint "
        f"(seed={golden['seed']} scale={golden['scale']}); the fast paths "
        "must stay byte-identical to the legacy implementation"
    )

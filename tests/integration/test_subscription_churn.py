"""Integration tests for *interest* churn (section III-D).

Nodes may change what they subscribe to at runtime; "the friend selection
mechanism in the proceeding rounds captures this change and routing tables
are updated accordingly" — clusters re-form around the new interests, new
gateways get elected, and delivery recovers without any restart.
"""

import pytest

from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.experiments.runner import measure
from repro.workloads.subscriptions import bucket_subscriptions

N, TOPICS = 100, 120


def build():
    subs = bucket_subscriptions(
        N, TOPICS, n_buckets=12, buckets_per_node=2, topics_per_bucket=5, seed=8
    )
    p = VitisProtocol(subs, VitisConfig(rt_size=10), seed=8,
                      election_every=0, relay_every=0)
    p.run_cycles(45)
    p.finalize()
    return p


class TestInterestMigration:
    def test_index_follows_subscription_changes(self):
        p = build()
        node = p.live_addresses()[0]
        old = set(p.nodes[node].profile.subscriptions)
        new_topic = next(t for t in range(TOPICS) if t not in old)
        p.subscribe(node, new_topic)
        assert node in p.subscribers(new_topic)
        victim = next(iter(old))
        p.unsubscribe(node, victim)
        assert node not in p.subscribers(victim)

    def test_delivery_recovers_after_mass_migration(self):
        """A quarter of the population swaps to a completely different
        interest bucket; after re-gossip + re-finalize the system is back
        to full delivery on the *new* subscriptions."""
        p = build()
        movers = p.live_addresses()[: N // 4]
        target_bucket = range(0, 10)
        for a in movers:
            p.nodes[a].profile.replace_subscriptions(target_bucket)
        # Rebuild the index (replace_subscriptions bypasses the protocol
        # helpers deliberately, to model a bulk change).
        p.sub_index.clear()
        for a, node in p.nodes.items():
            for t in node.profile.subscriptions:
                p.sub_index[t].add(a)

        p.run_cycles(25)     # friend selection re-clusters
        p.finalize()
        col = measure(p, 200, seed=9)
        assert col.hit_ratio() > 0.995

    def test_movers_get_reclustered(self):
        p = build()
        mover = p.live_addresses()[0]
        p.nodes[mover].profile.replace_subscriptions(range(0, 10))
        p.sub_index.clear()
        for a, node in p.nodes.items():
            for t in node.profile.subscriptions:
                p.sub_index[t].add(a)
        p.run_cycles(25)
        p.finalize()
        # The mover's friends now overlap its new interests.
        from repro.core.routing_table import LinkKind

        friends = [
            e.address
            for e in p.nodes[mover].rt
            if e.kind is LinkKind.FRIEND
        ]
        overlapping = sum(
            1
            for f in friends
            if p.profile_of(f).subscriptions & p.nodes[mover].profile.subscriptions
        )
        assert friends and overlapping >= len(friends) // 2

    def test_gateway_moves_with_interest(self):
        """If the elected gateway unsubscribes, its cluster elects a new
        one within d rounds of elections."""
        p = build()
        topic = max(p.topics(), key=lambda t: len(p.subscribers(t)))
        gws = p.gateways_of(topic)
        assert gws
        leaver = gws[0]
        p.unsubscribe(leaver, topic)
        p.finalize()
        new_gws = p.gateways_of(topic)
        assert leaver not in new_gws
        assert new_gws, "cluster left without a gateway"

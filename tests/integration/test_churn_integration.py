"""Integration tests under churn (the Fig. 12 machinery, small scale)."""

import pytest

from repro.baselines.rvr import RvrProtocol
from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.experiments.runner import measure
from repro.sim.churn import ChurnSchedule
from repro.workloads.skype import SkypeTrace
from repro.workloads.subscriptions import bucket_subscriptions

POOL, TOPICS = 60, 60


def subs():
    return bucket_subscriptions(
        POOL, TOPICS, n_buckets=6, buckets_per_node=2, topics_per_bucket=5, seed=4
    )


def vitis_under_churn():
    return VitisProtocol(
        subs(), VitisConfig(rt_size=8), seed=4, auto_start=False,
        election_every=1, relay_every=1,
    )


class TestChurnLifecycle:
    def test_population_tracks_schedule(self):
        p = vitis_under_churn()
        trace = SkypeTrace(n_nodes=POOL, horizon=50, flash_crowd_at=None, seed=4)
        trace.schedule().apply(p.engine, p.join, p.leave)
        p.run_cycles(30)
        expected = trace.population_at(30.0)
        assert abs(p.live_count() - expected) <= 2

    def test_flash_crowd_joins_all_at_once(self):
        p = vitis_under_churn()
        sched = ChurnSchedule.flash_crowd(list(range(POOL)), at=5.0)
        sched.apply(p.engine, p.join, p.leave)
        p.run_cycles(4)
        assert p.live_count() == 0
        p.run_cycles(2)
        assert p.live_count() == POOL

    def test_delivery_recovers_after_churn(self):
        p = vitis_under_churn()
        # Everybody joins at t=0, a third crash at t=12, measure at 30.
        events = [(a, 0.0, 1000.0) for a in range(POOL)]
        ChurnSchedule.from_sessions(events).apply(p.engine, p.join, p.leave)
        p.run_cycles(25)
        for a in range(0, POOL, 3):
            p.leave(a)
        p.run_cycles(20)
        col = measure(p, 60, seed=5, min_join_age=10.0)
        assert col.hit_ratio() > 0.95

    def test_hit_ratio_measured_after_grace_period(self):
        p = vitis_under_churn()
        ChurnSchedule.from_sessions([(a, 0.0, 1000.0) for a in range(POOL // 2)]).apply(
            p.engine, p.join, p.leave
        )
        p.run_cycles(30)
        # A latecomer joins now; with the 10 s rule it must not appear in
        # the denominator of an immediate measurement.
        late = POOL - 1
        p.join(late)
        col = measure(p, 40, seed=6, min_join_age=10.0)
        for rec in col.records:
            assert late not in rec.subscribers


class TestVitisVsRvrUnderFlashCrowd:
    @pytest.mark.slow
    def test_vitis_degrades_less(self):
        """The Fig. 12(a) claim, qualitatively: right after a flash crowd
        Vitis's hit ratio stays above RVR's."""
        results = {}
        for name, cls, kw in (
            ("vitis", VitisProtocol, dict(election_every=1, relay_every=1)),
            ("rvr", RvrProtocol, dict(relay_every=1)),
        ):
            p = cls(subs(), VitisConfig(rt_size=8), seed=4, auto_start=False, **kw)
            base = ChurnSchedule.from_sessions(
                [(a, 0.0, 1000.0) for a in range(POOL // 2)]
            )
            crowd = ChurnSchedule.flash_crowd(list(range(POOL // 2, POOL)), at=30.0)
            base.merged(crowd).apply(p.engine, p.join, p.leave)
            p.run_cycles(33)  # 3 cycles after the crowd lands
            col = measure(p, 80, seed=7, min_join_age=2.0)
            results[name] = col.hit_ratio()
        assert results["vitis"] >= results["rvr"] - 0.02

"""Cross-cutting invariants of dissemination records.

Checked over every topic of a converged system and for all three
systems' dissemination engines: the structural facts the metrics'
correctness silently depends on.
"""

import pytest

from repro.core.config import VitisConfig
from repro.experiments.runner import build_opt, build_rvr
from tests.conftest import small_subscriptions


def all_records(protocol, publisher_rule="first"):
    for topic in protocol.topics():
        subs = sorted(protocol.subscribers(topic))
        if not subs:
            continue
        yield topic, protocol.publish(topic, subs[0])


class TestVitisRecords:
    def test_delivered_subset_of_subscribers(self, converged_vitis):
        for _, rec in all_records(converged_vitis):
            assert set(rec.delivered_hops) <= set(rec.subscribers)

    def test_hops_positive(self, converged_vitis):
        for _, rec in all_records(converged_vitis):
            assert all(h >= 1 for h in rec.delivered_hops.values())

    def test_counters_name_live_nodes_only(self, converged_vitis):
        p = converged_vitis
        for _, rec in all_records(p):
            for addr in list(rec.interested_msgs) + list(rec.relay_msgs):
                assert p.is_alive(addr)

    def test_interested_counter_matches_subscription(self, converged_vitis):
        p = converged_vitis
        for topic, rec in all_records(p):
            for addr in rec.interested_msgs:
                assert p.profile_of(addr).subscribes_to(topic)
            for addr in rec.relay_msgs:
                assert not p.profile_of(addr).subscribes_to(topic)

    def test_relay_recipients_are_on_topic_infrastructure(self, converged_vitis):
        """A relay message only ever reaches a node with a role: on the
        topic's relay tree (gateway paths) — never an arbitrary node."""
        p = converged_vitis
        for topic, rec in all_records(p):
            for addr in rec.relay_msgs:
                assert p.nodes[addr].relay.on_tree(topic), (
                    f"node {addr} relayed topic {topic} without tree state"
                )

    def test_total_messages_consistent(self, converged_vitis):
        for _, rec in all_records(converged_vitis):
            assert rec.total_messages == (
                sum(rec.interested_msgs.values()) + sum(rec.relay_msgs.values())
            )

    def test_publish_is_idempotent_on_static_overlay(self, converged_vitis):
        p = converged_vitis
        topic = max(p.topics(), key=lambda t: len(p.subscribers(t)))
        pub = sorted(p.subscribers(topic))[0]
        a = p.publish(topic, pub)
        b = p.publish(topic, pub)
        assert a.delivered_hops == b.delivered_hops
        assert a.interested_msgs == b.interested_msgs
        assert a.relay_msgs == b.relay_msgs


class TestBaselineRecords:
    @pytest.fixture(scope="class")
    def rvr(self):
        p = build_rvr(small_subscriptions(seed=31), VitisConfig(rt_size=10), seed=31)
        return p

    @pytest.fixture(scope="class")
    def opt(self):
        return build_opt(small_subscriptions(seed=31), VitisConfig(rt_size=10),
                         seed=31, max_degree=10)

    def test_rvr_record_invariants(self, rvr):
        for topic, rec in all_records(rvr):
            assert set(rec.delivered_hops) <= set(rec.subscribers)
            for addr in rec.interested_msgs:
                assert rvr.profile_of(addr).subscribes_to(topic)
            for addr in rec.relay_msgs:
                assert not rvr.profile_of(addr).subscribes_to(topic)

    def test_opt_records_never_relay(self, opt):
        for _, rec in all_records(opt):
            assert rec.relay_msgs == {}

    def test_opt_delivered_subset(self, opt):
        for _, rec in all_records(opt):
            assert set(rec.delivered_hops) <= set(rec.subscribers)

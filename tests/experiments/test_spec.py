"""Tests for the declarative experiment spec layer."""

import pytest

from repro.experiments.scenarios import SCENARIOS
from repro.experiments.spec import (
    Scenario,
    Sweep,
    derive_seed,
    flat_reduce,
    rows_reduce,
    trial_key,
)


def _one_row(x, seed):
    return {"x": x, "seed": seed}


def _many_rows(n, seed):
    return [{"i": i} for i in range(n)]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "fig4", "vitis", 3) == derive_seed(0, "fig4", "vitis", 3)

    def test_distinct_paths_differ(self):
        seeds = {
            derive_seed(0, "fig4", "vitis", f) for f in (0, 3, 6, 9, 12)
        }
        assert len(seeds) == 5

    def test_base_seed_matters(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_31_bit_range(self):
        for base in range(20):
            s = derive_seed(base, "x")
            assert 0 <= s < 2**31


class TestSweep:
    def test_trials_keep_insertion_order(self):
        sw = Sweep("t", seed=0)
        for x in (5, 1, 9):
            sw.trial(_one_row, key=(x,), x=x)
        assert [t.kwargs["x"] for t in sw.trials] == [5, 1, 9]

    def test_derived_seeds_stable_and_distinct(self):
        sw1 = Sweep("t", seed=0)
        sw2 = Sweep("t", seed=0)
        a = [sw1.trial(_one_row, key=(x,), x=x).seed for x in range(4)]
        b = [sw2.trial(_one_row, key=(x,), x=x).seed for x in range(4)]
        assert a == b
        assert len(set(a)) == 4

    def test_pinned_seed_wins(self):
        sw = Sweep("t", seed=0)
        t = sw.trial(_one_row, key=("p",), seed=77, x=1)
        assert t.seed == 77

    def test_default_reduce_is_rows(self):
        sw = Sweep("t", seed=0)
        assert sw.reduce is rows_reduce

    def test_run_reduces_in_trial_order(self):
        sw = Sweep("t", seed=0)
        for x in (3, 1, 2):
            sw.trial(_one_row, key=(x,), seed=x, x=x)
        rows = sw.run()
        assert [r["x"] for r in rows] == [3, 1, 2]

    def test_flat_reduce(self):
        sw = Sweep("t", seed=0, reduce=flat_reduce)
        sw.trial(_many_rows, key=("a",), seed=0, n=2)
        sw.trial(_many_rows, key=("b",), seed=0, n=1)
        assert sw.run() == [{"i": 0}, {"i": 1}, {"i": 0}]


class TestTrialKey:
    def _trial(self, **kw):
        sw = Sweep("t", seed=0)
        return sw, sw.trial(_one_row, key=("k",), seed=1, **kw)

    def test_stable(self):
        sw1, t1 = self._trial(x=3)
        sw2, t2 = self._trial(x=3)
        assert trial_key(sw1, t1) == trial_key(sw2, t2)

    def test_kwargs_change_key(self):
        sw1, t1 = self._trial(x=3)
        sw2, t2 = self._trial(x=4)
        assert trial_key(sw1, t1) != trial_key(sw2, t2)

    def test_sweep_name_namespaces(self):
        sw, t = self._trial(x=3)
        assert trial_key("other", t) != trial_key(sw, t)

    def test_seed_changes_key(self):
        sw = Sweep("t", seed=0)
        t1 = sw.trial(_one_row, key=("a",), seed=1, x=3)
        t2 = sw.trial(_one_row, key=("b",), seed=2, x=3)
        assert trial_key(sw, t1) != trial_key(sw, t2)

    def test_unpicklable_kwargs_rejected(self):
        sw = Sweep("t", seed=0)
        t = sw.trial(_one_row, key=("bad",), seed=1, x=object())
        with pytest.raises(TypeError):
            trial_key(sw, t)


class TestScenarioRegistry:
    def test_all_eighteen_commands_present(self):
        assert set(SCENARIOS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "ablation_depth", "ablation_utility",
            "ablation_sampler", "ablation_sw", "ablation_proximity",
            "management_cost", "fault_sweep", "overload_sweep",
            "chaos_sweep",
        }

    def test_every_scenario_builds_a_sweep(self):
        for name, scenario in SCENARIOS.items():
            sweep = scenario.sweep(seed=0, scale=0.1)
            assert isinstance(sweep, Sweep), name
            assert len(sweep.trials) > 0, name

    def test_trials_are_declarative(self):
        """Every trial of every scenario is picklable and hashable."""
        import pickle

        for name, scenario in SCENARIOS.items():
            sweep = scenario.sweep(seed=0, scale=0.1)
            for t in sweep.trials:
                pickle.dumps((t.fn, dict(t.kwargs), t.seed))
                assert trial_key(sweep, t)

    def test_scaled_kwargs_floor(self):
        s = Scenario("x", lambda seed=0, **kw: Sweep("x"), {"n_nodes": 300})
        assert s.scaled_kwargs(0.0001) == {"n_nodes": 2}

    def test_adjust_hook_applies(self):
        fs = SCENARIOS["fault_sweep"]
        kwargs = fs.scaled_kwargs(0.2)
        assert kwargs["n_topics"] % 50 == 0
        assert kwargs["n_topics"] >= 100

    def test_fig12_bench_pool(self):
        assert SCENARIOS["fig12"].scaled_kwargs(1.0) == {"pool": 250}

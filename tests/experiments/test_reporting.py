"""Tests for table/CSV reporting."""

from repro.experiments.reporting import format_table, pivot, rows_to_csv

ROWS = [
    {"system": "vitis", "x": 1, "y": 0.25},
    {"system": "vitis", "x": 2, "y": 0.5},
    {"system": "rvr", "x": 1, "y": 0.75},
]


class TestFormatTable:
    def test_contains_all_cells(self):
        out = format_table(ROWS)
        assert "vitis" in out and "rvr" in out
        assert "0.250" in out and "0.750" in out

    def test_column_subset_and_order(self):
        out = format_table(ROWS, columns=["y", "system"])
        header = out.splitlines()[0]
        assert header.index("y") < header.index("system")
        assert "x" not in header

    def test_title(self):
        out = format_table(ROWS, title="Fig. X")
        assert out.splitlines()[0] == "Fig. X"

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_alignment(self):
        lines = format_table(ROWS).splitlines()
        assert len({len(l) for l in lines[1:2]}) == 1


class TestCsv:
    def test_round_trip(self):
        import csv
        import io

        text = rows_to_csv(ROWS)
        back = list(csv.DictReader(io.StringIO(text)))
        assert len(back) == 3
        assert back[0]["system"] == "vitis"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_extra_keys_ignored(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = rows_to_csv(rows, columns=["a"])
        assert "b" not in text


class TestPivot:
    def test_series_split(self):
        p = pivot(ROWS, index="x", series="system", value="y")
        assert p["vitis"] == [(1, 0.25), (2, 0.5)]
        assert p["rvr"] == [(1, 0.75)]

"""The chaos_sweep scenario (repro.experiments.chaos) and its CLI flags."""

import pytest

from repro.cli import main
from repro.experiments.chaos import chaos_sweep, chaos_sweep_spec
from repro.experiments.scenarios import SCENARIOS

SMALL = dict(
    n_nodes=60, n_topics=100, loss_rates=(0.05,), kill_frac=0.15,
    chaos_cycles=8, recover_cycles=5, events=40, seed=0,
)


@pytest.fixture(scope="module")
def rows():
    return chaos_sweep(**SMALL)


class TestSpec:
    def test_registered_scenario(self):
        assert "chaos_sweep" in SCENARIOS
        sweep = SCENARIOS["chaos_sweep"].sweep(seed=0, scale=0.3)
        assert sweep.name == "chaos_sweep"
        assert len(sweep.trials) == 4  # 2 loss rates x 2 detectors

    def test_rejects_unknown_detector(self):
        with pytest.raises(ValueError, match="unknown detectors"):
            chaos_sweep_spec(detectors=("swim", "raft"))

    def test_one_trial_per_detector_and_rate(self):
        sweep = chaos_sweep_spec(
            detectors=("swim",), loss_rates=(0.05, 0.1, 0.2)
        )
        assert len(sweep.trials) == 3


class TestRows:
    def test_row_keys_are_uniform(self, rows):
        assert len(rows) == 2
        keys = {tuple(r) for r in rows}
        assert len(keys) == 1  # rectangular CSV across the detector axis
        for col in (
            "detector", "detection_latency", "undetected", "victims",
            "rejoined", "false_evictions", "false_eviction_rate",
            "hit_ratio", "probes_sent", "suspicions", "refutations",
            "confirmations", "detector_rejoins",
        ):
            assert col in rows[0]

    def test_heartbeat_row_never_builds_a_detector(self, rows):
        hb = next(r for r in rows if r["detector"] == "heartbeat")
        assert hb["probes_sent"] == 0 and hb["confirmations"] == 0
        assert hb["detector_rejoins"] == 0

    def test_swim_machinery_engaged(self, rows):
        sw = next(r for r in rows if r["detector"] == "swim")
        assert sw["probes_sent"] > 0
        assert sw["confirmations"] >= 1
        assert sw["detector_rejoins"] == sw["rejoined"] > 0

    def test_acceptance_inequality(self, rows):
        """SWIM strictly beats the heartbeat baseline on false evictions
        at equal-or-better detection latency (the PR's acceptance gate,
        also enforced at bench scale in benchmarks/)."""
        hb = next(r for r in rows if r["detector"] == "heartbeat")
        sw = next(r for r in rows if r["detector"] == "swim")
        assert sw["false_eviction_rate"] < hb["false_eviction_rate"]
        assert sw["detection_latency"] <= hb["detection_latency"]

    def test_deterministic(self):
        assert chaos_sweep(**SMALL) == chaos_sweep(**SMALL)


class TestCliFlags:
    def test_chaos_flags_rejected_elsewhere(self):
        for flag in (["--detector", "swim"], ["--suspicion-timeout", "0.5"],
                     ["--probe-fanout", "2"]):
            with pytest.raises(SystemExit):
                main(["fig4"] + flag)

    def test_partition_rejected_on_chaos(self):
        with pytest.raises(SystemExit):
            main(["chaos_sweep", "--partition", "5"])

    def test_bad_detector_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos_sweep", "--detector", "raft"])

    def test_small_run_with_overrides(self, capsys):
        assert main([
            "chaos_sweep", "--scale", "0.3", "--loss-rate", "0.08",
            "--detector", "swim", "--detector", "heartbeat",
            "--probe-fanout", "2", "--suspicion-timeout", "0.6",
            "--fault-seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "false_eviction_rate" in out
        assert "swim" in out and "heartbeat" in out

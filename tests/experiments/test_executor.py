"""Tests for the trial executors, the result cache, and the determinism
contract (serial == parallel == cached, byte for byte)."""

import json

import pytest

from repro import obs
from repro.experiments import scenarios
from repro.experiments.executor import (
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    run_sweep,
)
from repro.experiments.spec import Sweep, trial_key

# Tiny sizes: these exercise the plumbing, not the physics.
FIG4_KW = dict(n_nodes=40, n_topics=100, friend_counts=(0, 6),
               patterns=("high",), events=40)
FAULT_KW = dict(n_nodes=40, n_topics=100, loss_rates=(0.0, 0.1),
                partition_cycles=(3,), heal_cycles=4, events=30)


class RecordingExecutor(SerialExecutor):
    """Counts how many trials actually execute (for resume tests)."""

    def __init__(self):
        self.ran = []

    def run_trials(self, trials):
        self.ran.extend(t.key for t in trials)
        return super().run_trials(trials)


class TestExecutorEquivalence:
    def test_fig4_serial_vs_parallel_identical(self):
        ser = scenarios.fig4_friends_vs_sw(seed=1, **FIG4_KW)
        par = scenarios.fig4_friends_vs_sw(
            seed=1, executor=ParallelExecutor(2), **FIG4_KW
        )
        assert json.dumps(ser, sort_keys=True) == json.dumps(par, sort_keys=True)

    def test_fault_sweep_serial_vs_parallel_identical(self):
        ser = scenarios.fault_sweep(seed=3, **FAULT_KW)
        par = scenarios.fault_sweep(seed=3, executor=ParallelExecutor(2), **FAULT_KW)
        assert json.dumps(ser, sort_keys=True) == json.dumps(par, sort_keys=True)

    def test_parallel_jobs_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestResultCache:
    def test_write_through_then_pure_cache_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        first = run_sweep(sweep, cache=cache)

        rec = RecordingExecutor()
        again = scenarios.fig4_spec(seed=1, **FIG4_KW)
        second = run_sweep(again, executor=rec, cache=cache, resume=True)
        assert rec.ran == []  # identical spec: nothing re-runs
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_interrupted_sweep_resumes_missing_trials_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        full = run_sweep(sweep, cache=cache)

        # Simulate a mid-way kill: drop two of the cached trial results.
        sweep2 = scenarios.fig4_spec(seed=1, **FIG4_KW)
        killed = [sweep2.trials[0], sweep2.trials[-1]]
        for t in killed:
            cache.path(sweep2.name, trial_key(sweep2, t)).unlink()

        rec = RecordingExecutor()
        resumed = run_sweep(sweep2, executor=rec, cache=cache, resume=True)
        assert rec.ran == [t.key for t in killed]
        assert json.dumps(full, sort_keys=True) == json.dumps(resumed, sort_keys=True)

    def test_seed_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW), cache=cache)
        rec = RecordingExecutor()
        other = scenarios.fig4_spec(seed=2, **FIG4_KW)
        run_sweep(other, executor=rec, cache=cache, resume=True)
        assert len(rec.ran) == len(other.trials)

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        full = run_sweep(sweep, cache=cache)

        sweep2 = scenarios.fig4_spec(seed=1, **FIG4_KW)
        victim = cache.path(sweep2.name, trial_key(sweep2, sweep2.trials[0]))
        victim.write_text("{not json")

        rec = RecordingExecutor()
        resumed = run_sweep(sweep2, executor=rec, cache=cache, resume=True)
        assert len(rec.ran) == 1
        assert json.dumps(full, sort_keys=True) == json.dumps(resumed, sort_keys=True)

    def test_resume_without_cache_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(Sweep("t"), resume=True)

    def test_orphaned_tmp_from_crashed_writer_is_cleaned(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        full = run_sweep(sweep, cache=cache)

        # A writer killed between mkstemp and os.replace strands a .tmp
        # next to the entries, and the entry it was replacing is gone.
        sweep2 = scenarios.fig4_spec(seed=1, **FIG4_KW)
        victim = cache.path(sweep2.name, trial_key(sweep2, sweep2.trials[0]))
        victim.unlink()
        orphan = victim.parent / "deadbeef0123.tmp"
        orphan.write_text('{"key": "partial')
        old = orphan.stat().st_mtime - 7200
        import os
        os.utime(orphan, (old, old))

        rec = RecordingExecutor()
        resumed = run_sweep(sweep2, executor=rec, cache=cache, resume=True)
        assert rec.ran == [sweep2.trials[0].key]
        assert not orphan.exists()
        assert not list(victim.parent.glob("*.tmp"))
        assert json.dumps(full, sort_keys=True) == json.dumps(resumed, sort_keys=True)

    def test_fresh_tmp_of_concurrent_writer_is_spared(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep_dir = tmp_path / "s"
        sweep_dir.mkdir()
        inflight = sweep_dir / "inflight.tmp"
        inflight.write_text("{}")
        assert cache.cleanup_orphans("s") == 0  # younger than max_age
        assert inflight.exists()
        assert cache.cleanup_orphans("s", max_age=0.0) == 1
        assert not inflight.exists()

    def test_cache_files_carry_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        run_sweep(sweep, cache=cache)
        entries = list((tmp_path / "fig4").glob("*.json"))
        assert len(entries) == len(sweep.trials)
        entry = json.loads(entries[0].read_text())
        assert set(entry) == {"key", "spec", "result", "meta"}
        assert entry["spec"]["fn"].startswith("repro.experiments.scenarios.")

    def test_cache_files_carry_provenance_meta(self, tmp_path):
        from repro import __version__
        from repro.provenance import code_fingerprint

        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        run_sweep(sweep, cache=cache)
        entry = json.loads(
            next((tmp_path / "fig4").glob("*.json")).read_text()
        )
        assert entry["meta"] == {
            "repro_version": __version__,
            "code_hash": code_fingerprint(),
        }


class TestStaleCache:
    """Cached trials written by a different code state: reused with a
    warning by default, recomputed under ``strict=True``."""

    def _age_entries(self, cache, sweep):
        """Rewrite every cached entry as if an older build produced it."""
        n = 0
        for t in sweep.trials:
            path = cache.path(sweep.name, trial_key(sweep, t))
            entry = json.loads(path.read_text())
            entry["meta"] = {"repro_version": "0.0.0", "code_hash": "f" * 12}
            path.write_text(json.dumps(entry))
            n += 1
        return n

    def test_stale_entries_reused_with_warning(self, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        full = run_sweep(sweep, cache=cache)
        self._age_entries(cache, sweep)

        rec = RecordingExecutor()
        with caplog.at_level("WARNING", logger="repro.experiments.executor"):
            again = run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                              executor=rec, cache=cache, resume=True)
        assert rec.ran == []  # still served from cache
        assert json.dumps(full, sort_keys=True) == json.dumps(again, sort_keys=True)
        assert any("predate the current code" in r.message for r in caplog.records)

    def test_fresh_entries_do_not_warn(self, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW), cache=cache)
        with caplog.at_level("WARNING", logger="repro.experiments.executor"):
            run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                      executor=RecordingExecutor(), cache=cache, resume=True)
        assert not any("predate" in r.message for r in caplog.records)

    def test_strict_cache_recomputes_stale_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        full = run_sweep(sweep, cache=cache)
        n = self._age_entries(cache, sweep)

        strict = ResultCache(tmp_path, strict=True)
        rec = RecordingExecutor()
        again = run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                          executor=rec, cache=strict, resume=True)
        assert len(rec.ran) == n  # every stale entry re-ran
        assert json.dumps(full, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_strict_recompute_refreshes_meta(self, tmp_path):
        # After a strict re-run the entries carry current provenance, so
        # the next strict resume is a pure cache read again.
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        run_sweep(sweep, cache=cache)
        self._age_entries(cache, sweep)

        strict = ResultCache(tmp_path, strict=True)
        run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                  cache=strict, resume=True)
        rec = RecordingExecutor()
        run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                  executor=rec, cache=strict, resume=True)
        assert rec.ran == []

    def test_pre_upgrade_entries_count_as_stale(self, tmp_path):
        # Entries written before meta existed have no provenance at all.
        cache = ResultCache(tmp_path)
        sweep = scenarios.fig4_spec(seed=1, **FIG4_KW)
        run_sweep(sweep, cache=cache)
        for t in sweep.trials:
            path = cache.path(sweep.name, trial_key(sweep, t))
            entry = json.loads(path.read_text())
            del entry["meta"]
            path.write_text(json.dumps(entry))

        _, stale = cache.load_checked(
            sweep.name, trial_key(sweep, sweep.trials[0])
        )
        assert stale

        strict = ResultCache(tmp_path, strict=True)
        rec = RecordingExecutor()
        run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                  executor=rec, cache=strict, resume=True)
        assert len(rec.ran) == len(sweep.trials)


class TestTelemetryMerge:
    def test_registry_merge_preserves_counter_totals(self):
        parent = obs.Telemetry()
        worker = obs.Telemetry()
        parent.metrics.counter("a").inc(2)
        worker.metrics.counter("a").inc(3)
        worker.metrics.counter("b", system="vitis").inc(1)
        worker.metrics.histogram("h").observe(5.0)
        worker.metrics.gauge("g").set(7.0)

        parent.merge_snapshot(worker.snapshot())
        assert parent.metrics.counter("a").value == 5
        assert parent.metrics.counter("b", system="vitis").value == 1
        assert parent.metrics.histogram("h").count == 1
        assert parent.metrics.gauge("g").value == 7.0

    def test_phase_merge_nests_under_open_phase(self):
        parent = obs.Telemetry()
        worker = obs.Telemetry()
        with worker.phase("converge"):
            pass
        with parent.phases.phase("fig4"):
            parent.merge_snapshot(worker.snapshot())
        assert parent.phases.calls("fig4/converge") == 1

    def test_parallel_run_counters_match_serial(self):
        ser_tel = obs.Telemetry()
        with obs.scope(ser_tel):
            scenarios.fig4_friends_vs_sw(seed=1, **FIG4_KW)

        par_tel = obs.Telemetry()
        with obs.scope(par_tel):
            scenarios.fig4_friends_vs_sw(
                seed=1, executor=ParallelExecutor(2), **FIG4_KW
            )

        ser_counters = ser_tel.metrics.to_dict()["counters"]
        par_counters = par_tel.metrics.to_dict()["counters"]
        assert ser_counters == par_counters
        assert ser_counters["engine_cycles_total"] > 0

    def test_parallel_run_has_phase_tree(self):
        tel = obs.Telemetry()
        with obs.scope(tel), tel.phase("fig4"):
            scenarios.fig4_friends_vs_sw(
                seed=1, executor=ParallelExecutor(2), **FIG4_KW
            )
        assert tel.phases.calls("fig4/converge") > 0
        assert tel.phases.calls("fig4/measure") > 0

    def test_parallel_phase_tree_matches_serial(self):
        # Worker snapshots folded into the parent must reproduce the
        # serial phase tree: same paths, same call counts (wall times
        # differ — workers time concurrently).
        def phase_tree(executor=None):
            tel = obs.Telemetry()
            with obs.scope(tel), tel.phase("fig4"):
                scenarios.fig4_friends_vs_sw(seed=1, executor=executor, **FIG4_KW)
            return {path: d["calls"] for path, d in tel.phases.to_dict().items()}

        ser = phase_tree()
        par = phase_tree(executor=ParallelExecutor(2))
        assert ser == par
        assert any(path.startswith("fig4/") for path in ser)

    def test_trials_total_counters(self, tmp_path):
        tel = obs.Telemetry()
        cache = ResultCache(tmp_path)
        with obs.scope(tel):
            run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW), cache=cache)
            run_sweep(scenarios.fig4_spec(seed=1, **FIG4_KW),
                      cache=cache, resume=True)
        n = len(scenarios.fig4_spec(seed=1, **FIG4_KW).trials)
        assert tel.metrics.counter("trials_total", sweep="fig4").value == 2 * n
        assert tel.metrics.counter("trials_cached_total", sweep="fig4").value == n


class TestTraceMerge:
    """Parallel workers write private trace files; the parent folds them
    into its own trace in trial order, tagged with a ``trial`` field."""

    def run_traced(self, tmp_path, name, executor=None):
        path = str(tmp_path / f"{name}.jsonl")
        tel = obs.Telemetry(trace=path)
        with obs.scope(tel):
            scenarios.fig4_friends_vs_sw(seed=1, executor=executor, **FIG4_KW)
        tel.close()
        return obs.read_trace(path)

    def test_merged_trace_reconstructs_like_serial(self, tmp_path):
        from repro.obs.audit import audit_trace

        ser = self.run_traced(tmp_path, "ser")
        par = self.run_traced(tmp_path, "par", executor=ParallelExecutor(2))
        ser_audit = audit_trace(ser)
        par_audit = audit_trace(par)
        assert par_audit.ok and ser_audit.ok
        assert par_audit.n_events == ser_audit.n_events
        assert par_audit.delivered_total == ser_audit.delivered_total
        assert par_audit.expected_total == ser_audit.expected_total

    def test_worker_records_tagged_with_trial_key(self, tmp_path):
        par = self.run_traced(tmp_path, "par", executor=ParallelExecutor(2))
        span_trials = {e.get("trial") for e in par if e["ev"] == "span"}
        assert None not in span_trials
        assert len(span_trials) > 1  # one tag per trial
        for tag in span_trials:
            assert isinstance(tag, str) and tag

    def test_merge_is_deterministic(self, tmp_path):
        def spans_only(events):
            return [
                {k: v for k, v in e.items() if k != "wall"}
                for e in events
                if e["ev"] in ("span", "miss")
            ]

        first = self.run_traced(tmp_path, "a", executor=ParallelExecutor(2))
        second = self.run_traced(tmp_path, "b", executor=ParallelExecutor(2))
        assert spans_only(first) == spans_only(second)

    def test_untraced_parallel_run_writes_no_trace_files(self, tmp_path):
        # metrics-only telemetry: the merge path must not even create
        # worker trace files (tracing is off).
        tel = obs.Telemetry()
        with obs.scope(tel):
            scenarios.fig4_friends_vs_sw(
                seed=1, executor=ParallelExecutor(2), **FIG4_KW
            )
        assert tel.trace is None

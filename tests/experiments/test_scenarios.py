"""Smoke tests for the per-figure scenarios at miniature sizes.

Full-size runs live in benchmarks/; here each scenario runs at the
smallest meaningful size and the row *shapes* and gross orderings are
asserted.
"""

import pytest

from repro.experiments import scenarios as sc

TINY = dict(n_nodes=70, n_topics=200, events=60, seed=3)


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return sc.fig4_friends_vs_sw(
            friend_counts=(0, 10), patterns=("high",), **TINY
        )

    def test_row_shape(self, rows):
        assert {r["system"] for r in rows} == {"vitis", "rvr"}
        for r in rows:
            assert {"hit_ratio", "traffic_overhead_pct", "mean_delay_hops"} <= set(r)

    def test_friends_reduce_overhead(self, rows):
        v = {r["n_friends"]: r["traffic_overhead_pct"] for r in rows if r["system"] == "vitis"}
        assert v[10] < v[0]

    def test_hit_ratio_full(self, rows):
        assert all(r["hit_ratio"] == pytest.approx(1.0) for r in rows)


class TestFig5:
    def test_fractions_sum_to_one_per_series(self):
        rows = sc.fig5_overhead_distribution(n_nodes=70, n_topics=200, events=80, seed=3)
        from collections import defaultdict

        sums = defaultdict(float)
        for r in rows:
            sums[(r["system"], r["pattern"])] += r["fraction_of_nodes"]
        for key, total in sums.items():
            assert total == pytest.approx(1.0, abs=1e-6), key


class TestFig6:
    def test_bigger_tables_reduce_overhead(self):
        rows = sc.fig6_routing_table_size(
            rt_sizes=(8, 20), patterns=("high",), **TINY
        )
        v = {r["rt_size"]: r["traffic_overhead_pct"] for r in rows if r["system"] == "vitis"}
        assert v[20] <= v[8]


class TestFig7:
    def test_skew_helps_random_pattern(self):
        rows = sc.fig7_publication_rate(
            alphas=(0.3, 2.5), patterns=("random",), **TINY
        )
        v = {r["alpha"]: r["traffic_overhead_pct"] for r in rows if r["system"] == "vitis"}
        assert v[2.5] <= v[0.3] * 1.25  # skew must not hurt; usually helps


class TestFig8and9:
    def test_degree_rows(self):
        rows = sc.fig8_twitter_degrees(n_users=400, seed=3)
        kinds = {r["kind"] for r in rows}
        assert kinds == {"in", "out"}
        assert sum(r["frequency"] for r in rows if r["kind"] == "in") == 400

    def test_summary_stats(self):
        s = sc.fig9_twitter_summary(n_users=400, seed=3)
        assert s["users"] == 400
        assert s["relations"] > 0
        assert 1.0 < s["alpha_in"] < 3.0


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return sc.fig10_twitter_sweep(
            n_users=700, sample_size=150, rt_sizes=(10,), events=60, seed=3
        )

    def test_three_systems(self, rows):
        assert {r["system"] for r in rows} == {"vitis", "rvr", "opt"}

    def test_vitis_and_rvr_full_hit(self, rows):
        for r in rows:
            if r["system"] in ("vitis", "rvr"):
                assert r["hit_ratio"] == pytest.approx(1.0, abs=0.02)

    def test_opt_zero_overhead(self, rows):
        opt = next(r for r in rows if r["system"] == "opt")
        assert opt["traffic_overhead_pct"] == 0.0

    def test_vitis_beats_rvr_overhead(self, rows):
        v = next(r for r in rows if r["system"] == "vitis")
        r = next(r for r in rows if r["system"] == "rvr")
        assert v["traffic_overhead_pct"] < r["traffic_overhead_pct"]


class TestFig11:
    def test_degree_distribution_rows(self):
        rows = sc.fig11_opt_degree_distribution(
            n_users=700, sample_size=150, cycles=15, seed=3
        )
        assert sum(r["frequency"] for r in rows) > 0
        assert all(r["degree"] >= 0 for r in rows)


class TestFig12:
    def test_churn_series(self):
        rows = sc.fig12_churn(
            pool=60,
            n_topics=60,
            horizon=60.0,
            flash_crowd_at=30.0,
            measure_every=20.0,
            events_per_window=30,
            seed=3,
            systems=("vitis",),
        )
        assert len(rows) == 3
        for r in rows:
            assert r["live_nodes"] >= 0
            assert 0 <= r["hit_ratio"] <= 1


class TestAblations:
    def test_gateway_depth_rows(self):
        rows = sc.ablation_gateway_depth(depths=(1, 6), **TINY)
        assert {r["gateway_depth"] for r in rows} == {1, 6}
        d = {r["gateway_depth"]: r for r in rows}
        # Tighter depth → at least as many gateways per topic.
        assert d[1]["mean_gateways_per_topic"] >= d[6]["mean_gateways_per_topic"]

    def test_utility_ablation_rows(self):
        rows = sc.ablation_utility(alpha=2.0, **TINY)
        assert {r["rate_weighted"] for r in rows} == {True, False}

    def test_sampler_ablation_close_metrics(self):
        rows = sc.ablation_sampler(**TINY)
        by = {r["sampler"]: r for r in rows}
        assert set(by) == {"newscast", "cyclon"}
        for r in rows:
            assert r["hit_ratio"] == pytest.approx(1.0, abs=0.02)


class TestPatternHelper:
    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            sc.make_subscriptions("bogus", 10, 100, 0)

"""Tests for the markdown report generator."""

import pytest

from repro.experiments.report import Section, build_report, render_markdown_table

ROWS = [
    {"system": "vitis", "x": 1, "y": 0.25},
    {"system": "rvr", "x": 1, "y": 0.75},
]


def fake_scenario(**kwargs):
    return list(ROWS)


class TestMarkdownTable:
    def test_shape(self):
        md = render_markdown_table(ROWS)
        lines = md.splitlines()
        assert lines[0] == "| system | x | y |"
        assert lines[1] == "|---|---|---|"
        assert "| vitis | 1 | 0.250 |" in lines

    def test_column_selection(self):
        md = render_markdown_table(ROWS, columns=["y"])
        assert "system" not in md

    def test_empty(self):
        assert render_markdown_table([]) == "*(no rows)*"


class TestSection:
    def test_run_captures_rows_and_time(self):
        s = Section("My fig", fake_scenario, n_nodes=10).run()
        assert s.rows == ROWS
        assert s.elapsed >= 0.0

    def test_markdown_includes_expectation_and_params(self):
        s = Section("My fig", fake_scenario, expectation="vitis wins", n_nodes=10).run()
        md = s.to_markdown()
        assert md.startswith("## My fig")
        assert "vitis wins" in md
        assert "n_nodes=10" in md

    def test_not_run_placeholder(self):
        md = Section("Pending", fake_scenario).to_markdown()
        assert "*(not run)*" in md


class TestBuildReport:
    def test_assembles_sections(self):
        report = build_report(
            [Section("A", fake_scenario), Section("B", fake_scenario)],
            title="Repro",
            preamble="All figures.",
        )
        assert report.startswith("# Repro")
        assert "## A" in report and "## B" in report
        assert "All figures." in report

    def test_csv_side_channel(self, tmp_path):
        build_report(
            [Section("Fig X (test)", fake_scenario)],
            csv_dir=str(tmp_path),
        )
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert files[0].suffix == ".csv"
        assert "vitis" in files[0].read_text()

    def test_real_scenario_smoke(self):
        """End-to-end with an actual (tiny) scenario."""
        from repro.experiments.scenarios import fig9_twitter_summary

        def wrapper(**kw):
            return [{"statistic": k, "value": v}
                    for k, v in fig9_twitter_summary(**kw).items()]

        report = build_report(
            [Section("Fig 9", wrapper, n_users=300, seed=1)],
        )
        assert "alpha_in" in report

"""Tests for the build/converge/measure pipeline."""

import pytest

from repro.core.config import VitisConfig
from repro.experiments.runner import build_opt, build_rvr, build_vitis, converge, measure
from repro.sim.metrics import MetricsCollector
from repro.smallworld.ring import is_ring_converged
from repro.workloads.publication import power_law_rates
from tests.conftest import small_subscriptions

CFG = VitisConfig(rt_size=8)


@pytest.fixture(scope="module")
def subs():
    return small_subscriptions(seed=9)


class TestBuilders:
    def test_build_vitis_converges(self, subs):
        p = build_vitis(subs, CFG, seed=1, min_cycles=20, max_cycles=100)
        assert is_ring_converged(p.ids_by_address(), p.successor_map())
        # Relays installed: some topic has relay state somewhere.
        assert any(p.nodes[a].relay.topics() for a in p.live_addresses())

    def test_build_rvr(self, subs):
        p = build_rvr(subs, CFG, seed=1, min_cycles=20, max_cycles=100)
        topic = p.topics()[0]
        assert p.gateways_of(topic) == sorted(p.subscribers(topic))

    def test_build_opt_bounded(self, subs):
        p = build_opt(subs, CFG, seed=1, cycles=15, max_degree=6)
        assert max(p.degree_distribution()) <= 6

    def test_build_opt_unbounded(self, subs):
        p = build_opt(subs, CFG, seed=1, cycles=15, max_degree=None)
        assert p.nodes[0].max_degree is None

    def test_converge_stops_early_when_ring_ready(self, subs):
        p = build_vitis(subs, CFG, seed=1, min_cycles=20, max_cycles=200)
        cycles_run = p.cycle
        assert cycles_run < 200

    def test_converge_tolerates_series_clock_rewind(self, subs):
        # Several trials share one telemetry under bench and
        # --metrics-out sweeps; a fast-converging trial after a slow one
        # must not crash the run-level ring_converged probe series (its
        # clock is per-trial cycle counts).  Rewinding samples are
        # skipped, non-rewinding ones still land.
        from repro import obs
        from repro.obs.telemetry import Telemetry

        tel = Telemetry()
        tel.series.record("ring_converged", 500.0, 0.0)
        with obs.scope(tel):
            build_vitis(subs, CFG, seed=1, min_cycles=20, max_cycles=100)
        assert tel.series.latest_time("ring_converged") == 500.0


class TestMeasure:
    @pytest.fixture(scope="class")
    def vitis(self, subs):
        return build_vitis(subs, CFG, seed=1, min_cycles=30, max_cycles=100)

    def test_collects_requested_events(self, vitis):
        col = measure(vitis, 30, seed=2)
        assert len(col) == 30

    def test_deterministic(self, vitis):
        a = measure(vitis, 20, seed=5).summary()
        b = measure(vitis, 20, seed=5).summary()
        assert a == b

    def test_existing_collector_extended(self, vitis):
        col = MetricsCollector()
        measure(vitis, 10, seed=2, collector=col)
        measure(vitis, 10, seed=3, collector=col)
        assert len(col) == 20

    def test_topic_restriction(self, vitis):
        topic = vitis.topics()[0]
        col = measure(vitis, 10, seed=2, topics=[topic])
        assert all(r.topic == topic for r in col.records)

    def test_owner_mode_skips_dead_owners(self, vitis):
        col = measure(vitis, 10, seed=2, publisher="owner")
        for r in col.records:
            assert r.publisher == r.topic

    def test_invalid_mode(self, vitis):
        with pytest.raises(ValueError):
            measure(vitis, 5, publisher="nobody")

    def test_min_join_age_restricts(self, vitis):
        # Everyone joined at t=0 and the clock advanced past the warmup,
        # so a tiny join-age bound changes nothing...
        a = measure(vitis, 15, seed=2, min_join_age=1.0).summary()
        b = measure(vitis, 15, seed=2).summary()
        assert a["hit_ratio"] == b["hit_ratio"]
        # ...but an impossible bound empties every denominator.
        c = measure(vitis, 15, seed=2, min_join_age=1e9)
        assert all(not r.subscribers for r in c.records)

    def test_rates_drive_topic_choice(self, subs):
        n_topics = 1 + max(t for s in subs for t in s)
        rates = power_law_rates(n_topics, 3.0, seed=1)
        p = build_vitis(subs, CFG, seed=1, rates=rates, min_cycles=20, max_cycles=60)
        col = measure(p, 60, seed=2)
        topics = [r.topic for r in col.records]
        # Strong skew: the modal topic dominates.
        from collections import Counter

        most = Counter(topics).most_common(1)[0][1]
        assert most > 10

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig12" in out and "fig9" in out

    def test_unknown_command(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_fig9_runs_small(self, capsys):
        assert main(["fig9", "--scale", "0.02", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "alpha_in" in out

    def test_fig8_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        assert main(["fig8", "--scale", "0.02", "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert text.startswith("kind,degree,frequency")
        assert len(text.splitlines()) > 3

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--scale", "0.025", "--seed", "1"]) == 0
        assert "degree" in capsys.readouterr().out

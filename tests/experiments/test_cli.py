"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import read_trace


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig12" in out and "fig9" in out

    def test_unknown_command(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_fig9_runs_small(self, capsys):
        assert main(["fig9", "--scale", "0.02", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "alpha_in" in out

    def test_fig8_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        assert main(["fig8", "--scale", "0.02", "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert text.startswith("kind,degree,frequency")
        assert len(text.splitlines()) > 3

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--scale", "0.025", "--seed", "1"]) == 0
        assert "degree" in capsys.readouterr().out


class TestExecutionFlags:
    def test_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--resume"])

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--jobs", "0"])

    def test_jobs_output_identical_to_serial(self, tmp_path, capsys):
        ser, par = tmp_path / "ser.csv", tmp_path / "par.csv"
        assert main(["fig8", "--scale", "0.02", "--seed", "1",
                     "--csv", str(ser)]) == 0
        assert main(["fig8", "--scale", "0.02", "--seed", "1",
                     "--jobs", "2", "--csv", str(par)]) == 0
        assert ser.read_text() == par.read_text()

    def test_cache_dir_resume_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        one, two = tmp_path / "a.csv", tmp_path / "b.csv"
        argv = ["fig8", "--scale", "0.02", "--seed", "1",
                "--cache-dir", str(cache)]
        assert main(argv + ["--csv", str(one)]) == 0
        assert (cache / "fig8").exists()
        assert main(argv + ["--resume", "--csv", str(two)]) == 0
        assert one.read_text() == two.read_text()


class TestTelemetryFlags:
    def test_trace_and_metrics_outputs(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        assert main([
            "fig4", "--scale", "0.1", "--seed", "1",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]) == 0

        events = read_trace(str(trace_path))  # every line valid JSON
        kinds = {e["ev"] for e in events}
        assert {"gossip_exchange", "lookup", "delivery", "phase"} <= kinds
        assert all("wall" in e for e in events)

        dump = json.loads(metrics_path.read_text())
        assert set(dump) == {"metrics", "phases", "series"}
        counters = dump["metrics"]["counters"]
        assert counters["engine_cycles_total"] > 0
        assert "fig4" in dump["phases"]
        assert "fig4/converge" in dump["phases"]

        err = capsys.readouterr().err
        assert "phase breakdown" in err

    def test_no_flags_uses_noop_backend(self, capsys):
        from repro import obs

        before = len(obs.NULL.metrics)
        assert main(["fig9", "--scale", "0.02", "--seed", "1"]) == 0
        assert len(obs.NULL.metrics) == before
        assert "phase breakdown" not in capsys.readouterr().err


class TestTraceReport:
    def traced_run(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["fig7", "--scale", "0.1", "--seed", "1",
                     "--trace-out", str(trace)]) == 0
        return str(trace)

    def test_report_renders_all_sections(self, tmp_path, capsys):
        trace = self.traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        out = capsys.readouterr().out
        assert "span trees:" in out
        assert "miss attribution" in out
        assert "hop kinds" in out
        assert "envelope O(log² N + d)" in out

    def test_audit_passes_on_healthy_trace(self, tmp_path, capsys):
        trace = self.traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace-report", trace, "--audit"]) == 0
        assert "audit: OK" in capsys.readouterr().err

    def test_audit_fails_on_unexplained_miss(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        events = [
            {"ev": "span", "trace": "e0", "span": 0, "kind": "publish",
             "src": 0, "dst": 0, "hop": 0, "topic": 1, "event": 0,
             "publisher": 0, "subs": 2},
            {"ev": "span", "trace": "e0", "span": 1, "parent": 0,
             "kind": "flood", "src": 0, "dst": 1, "hop": 1},
            {"ev": "span", "trace": "e0", "span": 2, "parent": 1,
             "kind": "deliver", "src": 1, "dst": 1, "hop": 1},
            {"ev": "miss", "trace": "e0", "addr": 2, "cause": "unexplained"},
        ]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert main(["trace-report", str(trace), "--audit"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "unexplained" in err

    def test_trees_flag_renders_span_trees(self, tmp_path, capsys):
        trace = self.traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace-report", trace, "--trees", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace e" in out and "publish" in out

    def test_missing_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace-report"])

    def test_unreadable_target_is_error(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_flags_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--audit"])
        with pytest.raises(SystemExit):
            main(["fig8", "extra-positional"])


class TestStrictCacheFlag:
    def test_strict_cache_requires_resume(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--strict-cache"])
        with pytest.raises(SystemExit):
            main(["fig8", "--cache-dir", "x", "--strict-cache"])

    def test_strict_cache_recomputes_stale_entries(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        one, two = tmp_path / "a.csv", tmp_path / "b.csv"
        argv = ["fig8", "--scale", "0.02", "--seed", "1",
                "--cache-dir", str(cache)]
        assert main(argv + ["--csv", str(one)]) == 0

        # Age every cached entry, as if an older build had written it.
        for path in (cache / "fig8").glob("*.json"):
            entry = json.loads(path.read_text())
            entry["meta"] = {"repro_version": "0.0.0", "code_hash": "old"}
            path.write_text(json.dumps(entry))

        assert main(argv + ["--resume", "--strict-cache",
                            "--csv", str(two)]) == 0
        assert one.read_text() == two.read_text()
        # The strict pass rewrote the entries with current provenance.
        from repro import __version__

        entry = json.loads(next((cache / "fig8").glob("*.json")).read_text())
        assert entry["meta"]["repro_version"] == __version__


BENCH_ARGS = ["bench", "--scenario", "fig8", "--scale", "0.1",
              "--seed", "1", "--no-memory"]


class TestBench:
    def test_bench_writes_schema_valid_trajectory(self, tmp_path, capsys):
        from repro.obs.perf import latest_run, load_trajectory

        out = tmp_path / "BENCH_fig8.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out)]) == 0
        doc = load_trajectory(out)  # validates the schema
        run = latest_run(doc)
        assert run["scenario"] == "fig8"
        assert run["seed"] == 1 and run["scale"] == 0.1
        assert run["memory_profiling"] is False
        assert run["rows_sha256"]
        assert "bench fig8" in capsys.readouterr().out

    def test_bench_appends_to_existing_trajectory(self, tmp_path, capsys):
        from repro.obs.perf import load_trajectory

        out = tmp_path / "BENCH_fig8.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out)]) == 0
        assert main(BENCH_ARGS + ["--bench-out", str(out)]) == 0
        assert len(load_trajectory(out)["runs"]) == 2

    def test_compare_ok_against_own_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fig8.json"
        base = tmp_path / "base.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out),
                                  "--compare", str(base),
                                  "--update-baseline"]) == 0
        assert base.exists()
        capsys.readouterr()
        assert main(BENCH_ARGS + ["--bench-out", str(out),
                                  "--compare", str(base),
                                  "--tolerance", "wall_s=10.0"]) == 0
        assert "bench compare: OK" in capsys.readouterr().err

    def test_compare_fails_on_injected_wall_regression(self, tmp_path, capsys):
        # The acceptance bar: a doctored baseline that makes this run look
        # >=20% slower must exit non-zero under the default 15% band.
        out = tmp_path / "BENCH_fig8.json"
        base = tmp_path / "base.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out),
                                  "--compare", str(base),
                                  "--update-baseline"]) == 0
        doc = json.loads(base.read_text())
        doc["runs"][-1]["wall_s"] /= 10.0
        base.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(BENCH_ARGS + ["--bench-out", str(out),
                                  "--compare", str(base)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSED" in err and "wall_s" in err

    def test_compare_fails_on_row_drift(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fig8.json"
        base = tmp_path / "base.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out),
                                  "--compare", str(base),
                                  "--update-baseline"]) == 0
        doc = json.loads(base.read_text())
        doc["runs"][-1]["rows_sha256"] = "0" * 64
        base.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(BENCH_ARGS + ["--bench-out", str(out),
                                  "--compare", str(base),
                                  "--tolerance", "wall_s=100.0"]) == 1
        assert "row drift" in capsys.readouterr().err

    def test_profile_prints_cumulative_table(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fig8.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out), "--profile"]) == 0
        assert "profile (top cumulative time)" in capsys.readouterr().out

    def test_bench_needs_scenario(self):
        with pytest.raises(SystemExit):
            main(["bench"])

    def test_unknown_scenario(self, capsys):
        assert main(["bench", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_tolerance_rejected(self):
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--tolerance", "wall_s"])
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--tolerance", "wall_s=abc"])

    def test_bench_flags_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--scenario", "fig8"])
        with pytest.raises(SystemExit):
            main(["fig8", "--profile"])

    def test_bench_rejects_sweep_io_flags(self):
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--cache-dir", "x"])
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--csv", "x.csv"])
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--trace-out", "t.jsonl"])


class TestScaleSweep:
    def test_appends_one_run_per_population(self, tmp_path, capsys,
                                            monkeypatch):
        from repro import cli
        from repro.obs.perf import load_trajectory

        monkeypatch.setattr(cli, "SCALE_SWEEP_SIZES", (400, 800))
        out = tmp_path / "BENCH_fig8.json"
        assert main(BENCH_ARGS + ["--scale-sweep",
                                  "--bench-out", str(out)]) == 0
        runs = load_trajectory(out)["runs"]
        assert [r["overrides"] for r in runs] == [
            {"n_users": 400}, {"n_users": 800},
        ]
        assert all(r["seed"] == 1 and r["scale"] == 0.1 for r in runs)
        assert runs[0]["rows_sha256"] != runs[1]["rows_sha256"]
        captured = capsys.readouterr()
        assert "bench fig8 (n_users=400)" in captured.out
        assert "scale sweep" in captured.out
        assert "fitted scaling exponent" in captured.err

    def test_rejected_with_compare_or_update_baseline(self, tmp_path):
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--scale-sweep", "--compare", "b.json"])
        with pytest.raises(SystemExit):
            main(BENCH_ARGS + ["--scale-sweep", "--update-baseline"])

    def test_rejected_outside_bench(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--scale-sweep"])


class TestBenchReport:
    def test_renders_trajectory_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_fig8.json"
        assert main(BENCH_ARGS + ["--bench-out", str(out)]) == 0
        assert main(BENCH_ARGS + ["--bench-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["bench-report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "bench trajectory: fig8 (2 run(s))" in text
        assert "phase deltas" in text

    def test_missing_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench-report"])

    def test_unreadable_target_is_error(self, tmp_path, capsys):
        assert main(["bench-report", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_trajectory_is_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong", "runs": []}))
        assert main(["bench-report", str(bad)]) == 2
        assert "invalid trajectory" in capsys.readouterr().err


class TestEmptyTrace:
    def test_empty_trace_file_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace-report", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty" in err and err.count("\n") == 1  # one line, no stack

    def test_whitespace_only_trace_is_an_error(self, tmp_path, capsys):
        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n")
        assert main(["trace-report", str(blank)]) == 2
        assert "empty" in capsys.readouterr().err


class TestLiveReport:
    def series_doc(self):
        from repro.net.store import MetricsStore

        store = MetricsStore()
        delta = {
            "counters": [["live_sent_total", [], 5.0],
                         ["live_retransmits", [], 1.0],
                         ["live_delivered_events", [], 2.0]],
            "gauges": [["live_queue_depth", [], 1.0]],
            "histograms": [["live_delivery_hops", [], {
                "buckets": [1, 2, 4], "bucket_counts": [1, 1, 0],
                "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0}]],
        }
        store.ingest(7001, 0, 0.1, 100.0, delta)
        store.ingest(7002, 0, 0.2, 100.4, delta)
        store.note_swim(7001, 101.0, 7002, "alive", "suspect")
        store.note_swim(7001, 102.5, 7002, "suspect", "alive")
        store.note_ring(100.5, 2, 2)
        store.note_ring(101.5, 0, 2)
        store.note_expected(101.8, 4)
        return store.to_doc()

    def test_renders_timeline_sections(self, tmp_path, capsys):
        series = tmp_path / "series.json"
        series.write_text(json.dumps(self.series_doc()))
        assert main(["live-report", str(series)]) == 0
        out = capsys.readouterr().out
        assert "swim verdict timeline" in out
        assert "alive -> suspect" in out and "suspect -> alive" in out
        assert "7001" in out and "7002" in out
        assert "ring convergence" in out

    def test_missing_file_is_one_line_error(self, tmp_path, capsys):
        assert main(["live-report", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_is_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["live-report", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_schema_is_error(self, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/1"}))
        assert main(["live-report", str(wrong)]) == 2

    def test_missing_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["live-report"])

"""Unit tests for the bounded-inbox capacity model.

Each policy's admission rule is pinned exactly — these numbers are the
contract the dissemination gates and the overload scenario lean on — and
the deterministic policies are proven never to touch the RNG.
"""

import pytest

from repro.sim.capacity import CLASS_SHARE, CapacityModel, NodeCapacity
from repro.sim.messages import PRIO_CONTROL, PRIO_NOTIFY, PRIO_PULL


class _PoisonedRng:
    """Any draw is a test failure (for the deterministic policies)."""

    def random(self):  # pragma: no cover - failure path only
        raise AssertionError("deterministic policy must not draw randomness")


class _FixedRng:
    def __init__(self, value: float) -> None:
        self.value = value
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.value


class TestNodeCapacityValidation:
    def test_defaults_are_valid(self):
        NodeCapacity()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"service_rate": 0},
            {"queue_depth": 0},
            {"policy": "newest-ish"},
            {"period": 0.0},
            {"backpressure_at": 0.0},
            {"backpressure_at": 1.5},
            {"red_start": 1.0},
            {"red_start": -0.1},
            {"queue_bytes": 0},
        ],
    )
    def test_bad_values_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NodeCapacity(**kwargs)

    def test_red_requires_an_rng(self):
        with pytest.raises(ValueError, match="rng"):
            CapacityModel(NodeCapacity(policy="red"))


class TestDropNewest:
    def _model(self, depth=4, rate=2):
        return CapacityModel(
            NodeCapacity(service_rate=rate, queue_depth=depth,
                         policy="drop_newest"),
            rng=_PoisonedRng(),
        )

    def test_fills_then_refuses_regardless_of_priority(self):
        m = self._model(depth=4)
        assert all(m.offer(0, 1, "notify", 0.0) for _ in range(4))
        # Queue full: even control is tail-dropped.
        assert not m.offer(0, 1, "heartbeat", 0.0)
        assert m.shed["heartbeat"] == 1
        assert m.queue_depth(1) == 4

    def test_window_advance_drains_service_rate(self):
        m = self._model(depth=4, rate=2)
        for _ in range(4):
            m.offer(0, 1, "notify", 0.0)
        # One elapsed window frees exactly service_rate slots.
        assert m.offer(0, 1, "notify", 1.0)
        assert m.queue_depth(1) == 3
        # Three elapsed windows drain everything (no negative backlog).
        assert m.offer(0, 1, "notify", 4.0)
        assert m.queue_depth(1) == 1

    def test_inboxes_are_independent(self):
        m = self._model(depth=1)
        assert m.offer(0, 1, "notify", 0.0)
        assert not m.offer(0, 1, "notify", 0.0)
        assert m.offer(0, 2, "notify", 0.0)


class TestDropLowest:
    def _model(self, depth=20):
        return CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=depth,
                         policy="drop_lowest"),
            rng=_PoisonedRng(),
        )

    def test_class_thresholds_are_the_shares(self):
        # depth=20: pull admits while backlog < 11, notify < 14,
        # lookup < 17, control < 20.
        m = self._model(depth=20)
        for threshold, kind in [(11, "pull"), (14, "notify"),
                                (17, "lookup"), (20, "heartbeat")]:
            while m.offer(0, 1, kind, 0.0):
                pass
            assert m.queue_depth(1) == threshold
        assert m.shed["pull"] == 1 and m.shed["heartbeat"] == 1

    def test_decision_depends_only_on_backlog(self):
        """Trunk reservation is arrival-order independent: any interleave
        producing the same backlog admits/refuses the same next message."""
        depth = 10  # notify share: admitted while backlog < 7
        a, b = self._model(depth), self._model(depth)
        for _ in range(7):
            a.offer(0, 1, "notify", 0.0)
        for kind in ("heartbeat", "lookup", "notify", "heartbeat",
                     "lookup", "heartbeat", "heartbeat"):
            b.offer(0, 1, kind, 0.0)
        assert a.queue_depth(1) == b.queue_depth(1) == 7
        assert a.offer(0, 1, "notify", 0.0) == b.offer(0, 1, "notify", 0.0) is False

    def test_unknown_kind_is_treated_as_data(self):
        m = self._model(depth=10)
        for _ in range(7):
            m.offer(0, 1, "heartbeat", 0.0)
        # Unknown kinds default to the notification class (share 0.70).
        assert not m.offer(0, 1, "mystery", 0.0)
        assert m.shed_by_class[PRIO_NOTIFY] == 1


class TestRed:
    def _model(self, rng, depth=20, start=0.5):
        return CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=depth, policy="red",
                         red_start=start),
            rng=rng,
        )

    def test_below_start_admits_without_drawing(self):
        rng = _FixedRng(0.0)
        m = self._model(rng, depth=20)  # control share 20, ramp starts at 10
        for _ in range(9):
            assert m.offer(0, 1, "heartbeat", 0.0)
        assert rng.draws == 0

    def test_at_limit_refuses_without_drawing(self):
        rng = _FixedRng(0.99)
        m = self._model(rng, depth=4, start=0.0)
        # With start=0 every admission below the limit draws.
        while m.offer(0, 1, "heartbeat", 0.0):
            pass
        draws_at_fill = rng.draws
        assert not m.offer(0, 1, "heartbeat", 0.0)  # backlog == limit
        assert rng.draws == draws_at_fill  # the at-limit refusal is free

    def test_ramp_probability_is_linear(self):
        # depth=20, control limit 20, start 10: at backlog 15 the drop
        # probability is (15-10)/(20-10) = 0.5.
        m_lo = self._model(_FixedRng(0.49), depth=20)
        m_hi = self._model(_FixedRng(0.51), depth=20)
        for m in (m_lo, m_hi):
            for _ in range(15):
                m._box(1).backlog += 1  # place the backlog directly
        assert not m_lo.offer(0, 1, "heartbeat", 0.0)  # 0.49 < 0.5 → drop
        assert m_hi.offer(0, 1, "heartbeat", 0.0)      # 0.51 ≥ 0.5 → admit


class TestBackpressure:
    def _model(self, depth=8, at=0.75):
        return CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=depth, policy="drop_newest",
                         backpressure_at=at),
            rng=_PoisonedRng(),
        )

    def test_never_offered_destination_is_clear(self):
        m = self._model()
        assert not m.backpressured(7, 0.0)
        assert m.backpressure_signals == 0

    def test_signals_exactly_past_the_watermark(self):
        m = self._model(depth=8, at=0.75)  # watermark: backlog >= 6
        for _ in range(5):
            m.offer(0, 1, "notify", 0.0)
        assert not m.backpressured(1, 0.0)
        m.offer(0, 1, "notify", 0.0)
        assert m.backpressured(1, 0.0)
        assert m.backpressured(1, 0.0)
        assert m.backpressure_signals == 2

    def test_drain_clears_the_signal(self):
        m = self._model(depth=8, at=0.75)
        for _ in range(8):
            m.offer(0, 1, "notify", 0.0)
        assert m.backpressured(1, 0.0)
        assert not m.backpressured(1, 6.0)  # 6 windows x rate 1 → backlog 2


class TestByteBound:
    def test_oversized_arrival_is_refused(self):
        m = CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=100, policy="drop_newest",
                         queue_bytes=100),
            rng=_PoisonedRng(),
        )
        assert m.offer(0, 1, "notify", 0.0, nbytes=60)
        assert not m.offer(0, 1, "notify", 0.0, nbytes=60)  # 120 > 100
        assert m.offer(0, 1, "notify", 0.0, nbytes=40)
        assert m.shed["notify"] == 1


class TestReads:
    def test_shed_and_survival_fractions(self):
        m = CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=10, policy="drop_lowest"),
            rng=_PoisonedRng(),
        )
        assert m.shed_fraction() == 0.0
        assert m.control_survival() == 1.0
        assert m.data_shed_fraction() == 0.0
        for _ in range(10):
            m.offer(0, 1, "notify", 0.0)  # 7 admitted, 3 shed
        assert m.shed_fraction() == pytest.approx(0.3)
        assert m.data_shed_fraction() == pytest.approx(0.3)
        assert m.control_survival() == 1.0  # no control offered yet
        for _ in range(3):
            m.offer(0, 1, "heartbeat", 0.0)  # all admitted (share 1.0)
        assert m.control_survival() == 1.0
        assert m.offered_by_class[PRIO_CONTROL] == 3
        assert m.offered_by_class[PRIO_NOTIFY] == 10

    def test_class_shares_cover_every_priority(self):
        assert set(CLASS_SHARE) == {PRIO_PULL, PRIO_NOTIFY, 2, PRIO_CONTROL}
        assert CLASS_SHARE[PRIO_PULL] < CLASS_SHARE[PRIO_NOTIFY] \
            < CLASS_SHARE[2] < CLASS_SHARE[PRIO_CONTROL] == 1.0

    def test_describe_is_scalar(self):
        m = CapacityModel(NodeCapacity(), rng=_PoisonedRng())
        d = m.describe()
        assert d["model"] == "capacity"
        assert all(isinstance(v, (int, float, str)) for v in d.values())

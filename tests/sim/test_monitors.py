"""Tests for the time-series recorder."""

import pytest

from repro.sim.monitors import TimeSeries


class TestRecording:
    def test_record_and_read(self):
        ts = TimeSeries()
        ts.record("hit", 1.0, 0.9)
        ts.record("hit", 2.0, 1.0)
        assert ts.series("hit") == [(1.0, 0.9), (2.0, 1.0)]
        assert ts.latest("hit") == 1.0
        assert len(ts) == 2

    def test_time_order_enforced(self):
        ts = TimeSeries()
        ts.record("x", 5.0, 1)
        with pytest.raises(ValueError):
            ts.record("x", 4.0, 2)

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.record("x", 5.0, 1)
        ts.record("x", 5.0, 2)
        assert len(ts.series("x")) == 2

    def test_record_many(self):
        ts = TimeSeries()
        ts.record_many(1.0, {"a": 1, "b": 2})
        assert ts.latest("a") == 1 and ts.latest("b") == 2

    def test_names_sorted(self):
        ts = TimeSeries()
        ts.record("b", 0, 1)
        ts.record("a", 0, 1)
        assert ts.names() == ["a", "b"]

    def test_missing_series(self):
        ts = TimeSeries()
        assert ts.series("nope") == []
        assert ts.latest("nope") is None
        assert ts.latest_time("nope") is None

    def test_latest_time(self):
        ts = TimeSeries()
        ts.record("x", 3.0, 7.0)
        ts.record("x", 5.0, 9.0)
        assert ts.latest_time("x") == 5.0
        assert ts.latest("x") == 9.0


class TestWindows:
    def setup_method(self):
        self.ts = TimeSeries()
        for t in range(10):
            self.ts.record("v", float(t), float(t * t))

    def test_window_half_open(self):
        assert self.ts.window("v", 2.0, 5.0) == [4.0, 9.0, 16.0]

    def test_window_mean(self):
        assert self.ts.window_mean("v", 0.0, 3.0) == pytest.approx((0 + 1 + 4) / 3)

    def test_window_min(self):
        assert self.ts.window_min("v", 3.0, 6.0) == 9.0

    def test_empty_window(self):
        assert self.ts.window("v", 100.0, 200.0) == []
        assert self.ts.window_mean("v", 100.0, 200.0) is None


class TestRows:
    def test_alignment_with_gaps(self):
        ts = TimeSeries()
        ts.record("a", 1.0, 10)
        ts.record("a", 2.0, 20)
        ts.record("b", 2.0, 200)
        rows = ts.to_rows()
        assert rows == [
            {"time": 1.0, "a": 10.0, "b": None},
            {"time": 2.0, "a": 20.0, "b": 200.0},
        ]

    def test_duplicate_timestamps_emit_one_row_each(self):
        ts = TimeSeries()
        ts.record("a", 1.0, 10)
        ts.record("a", 1.0, 11)
        ts.record("a", 1.0, 12)
        ts.record("b", 1.0, 100)
        rows = ts.to_rows()
        # One row per occurrence, k-th duplicates aligned across series.
        assert rows == [
            {"time": 1.0, "a": 10.0, "b": 100.0},
            {"time": 1.0, "a": 11.0, "b": None},
            {"time": 1.0, "a": 12.0, "b": None},
        ]

    def test_renders_with_reporting(self):
        from repro.experiments.reporting import format_table

        ts = TimeSeries()
        ts.record_many(0.0, {"hit": 1.0})
        out = format_table(ts.to_rows())
        assert "hit" in out

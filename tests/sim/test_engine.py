"""Tests for the discrete-event engine and cycle driver."""

import pytest

from repro.sim.engine import CycleDriver, Engine, PeriodicTask


class TestEngineBasics:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_schedule_and_run(self):
        e = Engine()
        fired = []
        e.schedule(1.5, lambda: fired.append(e.now))
        e.run()
        assert fired == [1.5]
        assert e.now == 1.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        e = Engine()
        e.schedule(2.0, lambda: None)
        e.run()
        with pytest.raises(ValueError):
            e.schedule_at(1.0, lambda: None)

    def test_fifo_within_same_instant(self):
        e = Engine()
        order = []
        for i in range(5):
            e.schedule(1.0, lambda i=i: order.append(i))
        e.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_ordering(self):
        e = Engine()
        order = []
        e.schedule(3.0, lambda: order.append(3))
        e.schedule(1.0, lambda: order.append(1))
        e.schedule(2.0, lambda: order.append(2))
        e.run()
        assert order == [1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_cancelled_events_skipped(self):
        e = Engine()
        fired = []
        h = e.schedule(1.0, lambda: fired.append("a"))
        e.schedule(2.0, lambda: fired.append("b"))
        h.cancelled = True
        e.run()
        assert fired == ["b"]

    def test_processed_counter(self):
        e = Engine()
        for _ in range(3):
            e.schedule(1.0, lambda: None)
        e.run()
        assert e.processed == 3

    def test_pending_excludes_cancelled(self):
        e = Engine()
        h1 = e.schedule(1.0, lambda: None)
        e.schedule(2.0, lambda: None)
        e.schedule(3.0, lambda: None)
        assert e.pending == 3
        h1.cancelled = True
        # Lazy deletion keeps the tombstone in the heap, but it is no
        # longer pending work.
        assert e.pending == 2

    def test_clear_drops_pending(self):
        e = Engine()
        fired = []
        e.schedule(1.0, lambda: fired.append(1))
        e.clear()
        e.run()
        assert fired == []


class TestPendingCounter:
    """``Engine.pending`` is maintained incrementally — these pin the
    transitions the counter must survive."""

    def test_pending_tracks_schedule_and_fire(self):
        e = Engine()
        for i in range(4):
            e.schedule(float(i + 1), lambda: None)
        assert e.pending == 4
        e.run(until=2.0)
        assert e.pending == 2
        e.run()
        assert e.pending == 0

    def test_uncancel_restores_pending(self):
        e = Engine()
        h = e.schedule(1.0, lambda: None)
        h.cancelled = True
        assert e.pending == 0
        h.cancelled = False
        assert e.pending == 1
        e.run()
        assert e.processed == 1

    def test_repeated_cancel_is_idempotent(self):
        e = Engine()
        h = e.schedule(1.0, lambda: None)
        e.schedule(2.0, lambda: None)
        h.cancelled = True
        h.cancelled = True
        assert e.pending == 1

    def test_cancel_after_fire_is_inert(self):
        e = Engine()
        h = e.schedule(1.0, lambda: None)
        e.schedule(2.0, lambda: None)
        e.run(until=1.0)
        h.cancelled = True  # already fired; must not corrupt the count
        assert e.pending == 1

    def test_cancelled_tombstone_pop_keeps_count(self):
        e = Engine()
        h = e.schedule(1.0, lambda: None)
        e.schedule(2.0, lambda: None)
        h.cancelled = True
        e.run()  # pops the tombstone and the live event
        assert e.pending == 0
        h.cancelled = False  # detached handle: no effect on the engine
        assert e.pending == 0

    def test_clear_resets_counter(self):
        e = Engine()
        handles = [e.schedule(1.0, lambda: None) for _ in range(3)]
        e.clear()
        assert e.pending == 0
        handles[0].cancelled = True  # detached: must stay at zero
        assert e.pending == 0


class TestRunUntil:
    def test_until_is_inclusive(self):
        e = Engine()
        fired = []
        e.schedule(1.0, lambda: fired.append(1))
        e.schedule(2.0, lambda: fired.append(2))
        e.run(until=1.0)
        assert fired == [1]
        assert e.now == 1.0

    def test_clock_advances_to_horizon_without_events(self):
        e = Engine()
        e.schedule(5.0, lambda: None)
        e.run(until=3.0)
        assert e.now == 3.0
        assert e.pending == 1

    def test_events_scheduled_during_run_execute(self):
        e = Engine()
        fired = []

        def chain():
            fired.append(e.now)
            if len(fired) < 3:
                e.schedule(1.0, chain)

        e.schedule(1.0, chain)
        e.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_bound(self):
        e = Engine()
        fired = []
        for _ in range(10):
            e.schedule(1.0, lambda: fired.append(1))
        e.run(max_events=4)
        assert len(fired) == 4


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        e = Engine()
        fired = []
        PeriodicTask(e, 1.0, lambda: fired.append(e.now))
        e.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_cancels(self):
        e = Engine()
        fired = []
        t = PeriodicTask(e, 1.0, lambda: fired.append(e.now))
        e.run(until=2.0)
        t.stop()
        e.run(until=5.0)
        assert fired == [1.0, 2.0]

    def test_callback_false_stops(self):
        e = Engine()
        fired = []

        def cb():
            fired.append(e.now)
            return len(fired) < 2

        PeriodicTask(e, 1.0, cb)
        e.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicTask(Engine(), 0.0, lambda: None)


class TestCycleDriver:
    def test_cycles_advance_clock(self):
        e = Engine()
        cycles = []
        d = CycleDriver(e, cycles.append, period=1.0)
        d.run_cycles(3)
        assert cycles == [0, 1, 2]
        assert e.now == 3.0
        assert d.cycle == 3

    def test_engine_events_interleave(self):
        e = Engine()
        log = []
        d = CycleDriver(e, lambda c: log.append(("cycle", c)), period=1.0)
        e.schedule(1.5, lambda: log.append(("event", e.now)))
        d.run_cycles(3)
        assert log == [("cycle", 0), ("event", 1.5), ("cycle", 1), ("cycle", 2)]

    def test_run_until(self):
        e = Engine()
        count = []
        d = CycleDriver(e, count.append, period=2.0)
        d.run_until(5.0)
        assert e.now >= 5.0
        assert len(count) == 3

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            CycleDriver(Engine(), lambda c: None, period=-1.0)

"""Tests for coordinate-based latency models."""

import random

import pytest

from repro.sim.latency import CoordinateLatency, CoordinateSpace


@pytest.fixture
def coords(rng):
    return CoordinateSpace.random(range(20), rng)


class TestCoordinateSpace:
    def test_random_in_unit_square(self, coords):
        for a in range(20):
            x, y = coords.coord(a)
            assert 0 <= x <= 1 and 0 <= y <= 1

    def test_distance_metric(self, coords):
        assert coords.distance(1, 1) == 0.0
        assert coords.distance(1, 2) == coords.distance(2, 1)
        assert coords.distance(1, 2) <= 2 ** 0.5

    def test_triangle_inequality(self, coords):
        for a, b, c in [(1, 2, 3), (4, 5, 6), (0, 10, 19)]:
            assert coords.distance(a, c) <= coords.distance(a, b) + coords.distance(b, c) + 1e-12

    def test_clustered_sites_are_tight(self, rng):
        cs = CoordinateSpace.clustered(range(100), rng, n_sites=3, spread=0.02)
        # Mean pairwise distance should be dominated by inter-site hops;
        # many pairs (same-site) are very close.
        dists = [cs.distance(a, b) for a in range(0, 100, 7) for b in range(1, 100, 13)]
        close = sum(1 for d in dists if d < 0.1)
        assert close > len(dists) * 0.15

    def test_clustered_validation(self, rng):
        with pytest.raises(ValueError):
            CoordinateSpace.clustered(range(5), rng, n_sites=0)

    def test_membership(self, coords):
        assert 5 in coords
        assert 99 not in coords
        assert len(coords) == 20


class TestCoordinateLatency:
    def test_delay_grows_with_distance(self, coords):
        lat = CoordinateLatency(coords, base=0.001, ms_per_unit=1.0)
        pairs = sorted(
            ((coords.distance(a, b), a, b) for a in range(10) for b in range(10, 20)),
        )
        _, a1, b1 = pairs[0]
        _, a2, b2 = pairs[-1]
        assert lat.delay(a1, b1) < lat.delay(a2, b2)

    def test_base_floor(self, coords):
        lat = CoordinateLatency(coords, base=0.5, ms_per_unit=0.0)
        assert lat.delay(1, 2) == 0.5

    def test_unknown_nodes_pay_base_only(self, coords):
        lat = CoordinateLatency(coords, base=0.25, ms_per_unit=1.0)
        assert lat.delay(1, 999) == 0.25

    def test_jitter_requires_rng(self, coords):
        with pytest.raises(ValueError):
            CoordinateLatency(coords, jitter=0.1)

    def test_jitter_bounded(self, coords):
        lat = CoordinateLatency(coords, base=0.0, ms_per_unit=0.0,
                                jitter=0.2, rng=random.Random(1))
        for _ in range(50):
            assert 0.0 <= lat.delay(1, 2) <= 0.2

    def test_cost_is_deterministic(self, coords):
        lat = CoordinateLatency(coords, base=0.01, ms_per_unit=0.5,
                                jitter=0.3, rng=random.Random(1))
        assert lat.cost(3, 7) == lat.cost(3, 7)
        assert lat.cost(3, 7) == pytest.approx(0.01 + 0.5 * coords.distance(3, 7))

    def test_negative_params_rejected(self, coords):
        with pytest.raises(ValueError):
            CoordinateLatency(coords, base=-1)

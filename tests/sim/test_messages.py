"""Tests for the message dataclasses."""

import pytest

from repro.sim.messages import (
    PRIO_CONTROL,
    PRIO_LOOKUP,
    PRIO_NOTIFY,
    PRIO_PULL,
    LookupMessage,
    Message,
    Notification,
    ProfileMessage,
    PsExchangeReply,
    PsExchangeRequest,
    PullReply,
    PullRequest,
    RelayInstall,
    RtExchangeReply,
    RtExchangeRequest,
    priority_of,
)


class TestBaseMessage:
    def test_kind_is_class_name(self):
        assert Message(src=0, dst=1).kind == "Message"
        assert Notification(src=0, dst=1).kind == "Notification"

    def test_default_size(self):
        assert Message(src=0, dst=1).size == 1

    def test_size_override(self):
        assert PullReply(src=0, dst=1, size=1000).size == 1000


class TestNotification:
    def test_fields(self):
        n = Notification(src=1, dst=2, topic=7, event_id=9, hops=3, publisher=1)
        assert (n.topic, n.event_id, n.hops, n.publisher) == (7, 9, 3, 1)

    def test_defaults_are_sentinels(self):
        n = Notification(src=1, dst=2)
        assert n.topic == -1 and n.event_id == -1 and n.hops == 0


class TestPullMessages:
    def test_request_reply_pair(self):
        req = PullRequest(src=2, dst=1, event_id=9)
        rep = PullReply(src=1, dst=2, event_id=9, payload=b"data")
        assert req.event_id == rep.event_id
        assert rep.payload == b"data"


class TestExchangeMessages:
    def test_ps_exchange_carries_views(self):
        req = PsExchangeRequest(src=0, dst=1, view=[(2, 22, 0)])
        rep = PsExchangeReply(src=1, dst=0, view=[(3, 33, 1)])
        assert req.view[0][0] == 2
        assert rep.view[0][2] == 1

    def test_rt_exchange_carries_buffers(self):
        req = RtExchangeRequest(src=0, dst=1, buffer=[(2, 22, 0)])
        rep = RtExchangeReply(src=1, dst=0, buffer=[])
        assert req.buffer and not rep.buffer

    def test_default_containers_are_independent(self):
        a = PsExchangeRequest(src=0, dst=1)
        b = PsExchangeRequest(src=0, dst=2)
        a.view.append((9, 9, 9))
        assert b.view == []


class TestRoutingMessages:
    def test_lookup_fields(self):
        m = LookupMessage(src=0, dst=1, target_id=55, origin=0, hops=2)
        assert m.target_id == 55 and m.hops == 2

    def test_relay_install_fields(self):
        m = RelayInstall(src=0, dst=1, topic=4, target_id=55, origin=0, hops=1)
        assert m.topic == 4 and m.origin == 0

    def test_profile_message_payload_roundtrip(self):
        payload = (frozenset({1, 2}), 3, {}, False)
        m = ProfileMessage(src=0, dst=1, profile=payload)
        assert m.profile[0] == frozenset({1, 2})


class TestPriorities:
    def test_class_ordering(self):
        assert PRIO_PULL < PRIO_NOTIFY < PRIO_LOOKUP < PRIO_CONTROL

    @pytest.mark.parametrize(
        "msg, prio",
        [
            (Notification(src=0, dst=1), PRIO_NOTIFY),
            (PullRequest(src=0, dst=1), PRIO_PULL),
            (PullReply(src=0, dst=1), PRIO_PULL),
            (LookupMessage(src=0, dst=1), PRIO_LOOKUP),
            (ProfileMessage(src=0, dst=1), PRIO_CONTROL),
            (PsExchangeRequest(src=0, dst=1), PRIO_CONTROL),
            (RtExchangeReply(src=0, dst=1), PRIO_CONTROL),
            (RelayInstall(src=0, dst=1), PRIO_CONTROL),
        ],
    )
    def test_message_priority(self, msg, prio):
        assert msg.priority == prio

    @pytest.mark.parametrize(
        "kind, prio",
        [
            ("notify", PRIO_NOTIFY),
            ("pull", PRIO_PULL),
            ("lookup", PRIO_LOOKUP),
            ("heartbeat", PRIO_CONTROL),
            ("relay_install", PRIO_CONTROL),
        ],
    )
    def test_fast_path_kind_priority(self, kind, prio):
        assert priority_of(kind) == prio

    def test_unknown_kind_defaults_to_data(self):
        assert priority_of("frobnicate") == PRIO_NOTIFY


class TestSizeBytes:
    """Regression pins: the nominal wire size of every kind.

    These numbers feed the capacity model's optional byte bound; a size
    change is a protocol-cost change and must be deliberate.
    """

    @pytest.mark.parametrize(
        "msg, nbytes",
        [
            (Message(src=0, dst=1), 24),            # bare header
            (Notification(src=0, dst=1), 56),       # header + 4 words
            (PullRequest(src=0, dst=1), 32),        # header + event id
            (PullReply(src=0, dst=1), 1056),        # nominal 1 KiB event
            (ProfileMessage(src=0, dst=1), 24),     # empty profile
            (LookupMessage(src=0, dst=1), 48),      # header + 3 words
            (RelayInstall(src=0, dst=1), 56),       # header + 4 words
            (PsExchangeRequest(src=0, dst=1), 24),  # empty view
            (RtExchangeReply(src=0, dst=1), 24),    # empty buffer
        ],
    )
    def test_pinned_default_sizes(self, msg, nbytes):
        assert msg.size_bytes == nbytes

    def test_pull_reply_payload_overrides_the_nominal_size(self):
        assert PullReply(src=0, dst=1, payload=b"x" * 10).size_bytes == 24 + 8 + 10

    def test_exchange_size_grows_with_the_view(self):
        empty = PsExchangeRequest(src=0, dst=1)
        loaded = PsExchangeRequest(src=0, dst=1, view=[(2, 22, 0), (3, 33, 1)])
        assert loaded.size_bytes > empty.size_bytes

    def test_rt_exchange_size_grows_with_the_buffer(self):
        empty = RtExchangeRequest(src=0, dst=1)
        loaded = RtExchangeRequest(src=0, dst=1, buffer=[(2, 22, 0)])
        assert loaded.size_bytes > empty.size_bytes

    def test_abstract_size_field_is_unchanged(self):
        # ``size`` is the abstract unit cost used by bytes_sent; the
        # byte audit must not disturb it.
        assert Message(src=0, dst=1).size == 1
        assert Notification(src=0, dst=1).size == 1


class TestSpanMetadata:
    """The causal-tracing stamp must be invisible to untraced machinery."""

    def test_untraced_messages_carry_no_span(self):
        msg = Notification(src=0, dst=1, topic=3)
        assert msg.span is None
        assert "span" not in vars(msg)  # class default, no per-instance slot

    def test_span_is_not_a_dataclass_field(self):
        import dataclasses

        names = {f.name for f in dataclasses.fields(Notification)}
        assert "span" not in names

    def test_stamping_does_not_change_size_bytes(self):
        plain = Notification(src=0, dst=1, topic=3, event_id=4, hops=2)
        stamped = Notification(src=0, dst=1, topic=3, event_id=4, hops=2)
        stamped.span = ("e0", 5, "flood")
        assert stamped.size_bytes == plain.size_bytes
        assert plain.size_bytes == 24 + 4 * 8  # pinned: header + 4 words

    def test_stamping_does_not_affect_equality_or_repr(self):
        plain = Notification(src=0, dst=1, topic=3)
        stamped = Notification(src=0, dst=1, topic=3)
        stamped.span = ("e0", 5, "flood")
        assert plain == stamped
        assert repr(plain) == repr(stamped)

    def test_constructor_rejects_span_kwarg(self):
        with pytest.raises(TypeError):
            Notification(src=0, dst=1, span=("e0", 1, "flood"))

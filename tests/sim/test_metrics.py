"""Tests for the metric collectors."""

from collections import Counter

import pytest

from repro.sim.metrics import DisseminationRecord, MetricsCollector, restrict_record


def record(topic=1, subscribers=(2, 3, 4), delivered=None, interested=None, relay=None):
    return DisseminationRecord(
        topic=topic,
        event_id=0,
        publisher=1,
        subscribers=frozenset(subscribers),
        delivered_hops=dict(delivered or {}),
        interested_msgs=Counter(interested or {}),
        relay_msgs=Counter(relay or {}),
    )


class TestDisseminationRecord:
    def test_hit_ratio_full(self):
        r = record(delivered={2: 1, 3: 2, 4: 1})
        assert r.hit_ratio() == 1.0

    def test_hit_ratio_partial(self):
        r = record(delivered={2: 1})
        assert r.hit_ratio() == pytest.approx(1 / 3)

    def test_hit_ratio_no_subscribers_is_one(self):
        assert record(subscribers=()).hit_ratio() == 1.0

    def test_message_totals(self):
        r = record(interested={2: 2, 3: 1}, relay={9: 3})
        assert r.total_messages == 6
        assert r.total_relay_messages == 3

    def test_counts(self):
        r = record(delivered={2: 1})
        assert r.n_subscribers == 3
        assert r.n_delivered == 1


class TestMetricsCollector:
    def test_empty_defaults(self):
        c = MetricsCollector()
        assert c.hit_ratio() == 1.0
        assert c.traffic_overhead_pct() == 0.0
        assert c.mean_delay() == 0.0
        assert len(c) == 0

    def test_hit_ratio_aggregates_over_events(self):
        c = MetricsCollector()
        c.add(record(delivered={2: 1, 3: 1, 4: 1}))
        c.add(record(delivered={}))
        assert c.hit_ratio() == pytest.approx(0.5)

    def test_overhead_pct(self):
        c = MetricsCollector()
        c.add(record(interested={2: 3}, relay={9: 1}))
        assert c.traffic_overhead_pct() == pytest.approx(25.0)

    def test_mean_and_max_delay(self):
        c = MetricsCollector()
        c.add(record(delivered={2: 1, 3: 3}))
        c.add(record(delivered={4: 2}))
        assert c.mean_delay() == pytest.approx(2.0)
        assert c.max_delay() == 3

    def test_extend(self):
        c = MetricsCollector()
        c.extend([record(), record()])
        assert len(c) == 2

    def test_per_node_overhead(self):
        c = MetricsCollector()
        c.add(record(interested={2: 1, 9: 1}, relay={9: 3}))
        per = c.per_node_overhead()
        assert per[2] == 0.0
        assert per[9] == pytest.approx(75.0)

    def test_overhead_histogram_fractions_sum_to_one(self):
        c = MetricsCollector()
        c.add(record(interested={2: 1, 3: 1}, relay={9: 2, 3: 1}))
        _, fractions = c.overhead_histogram()
        assert fractions.sum() == pytest.approx(1.0)

    def test_overhead_histogram_includes_100pct_nodes(self):
        c = MetricsCollector()
        c.add(record(relay={9: 5}))
        edges, fractions = c.overhead_histogram()
        assert fractions[-1] == pytest.approx(1.0)

    def test_overhead_histogram_empty(self):
        edges, fractions = MetricsCollector().overhead_histogram()
        assert fractions.sum() == 0.0

    def test_delay_distribution(self):
        c = MetricsCollector()
        c.add(record(delivered={2: 1, 3: 4}))
        assert sorted(c.delay_distribution()) == [1, 4]

    def test_summary_keys(self):
        s = MetricsCollector().summary()
        assert set(s) == {"events", "hit_ratio", "traffic_overhead_pct", "mean_delay_hops"}

    def test_reset(self):
        c = MetricsCollector()
        c.add(record(interested={2: 1}))
        c.reset()
        assert len(c) == 0
        assert c.traffic_overhead_pct() == 0.0


class TestRestrictRecord:
    def test_restricts_denominator(self):
        r = record(delivered={2: 1, 3: 1})
        out = restrict_record(r, [2])
        assert out.subscribers == frozenset({2})
        assert out.delivered_hops == {2: 1}
        assert out.hit_ratio() == 1.0

    def test_traffic_untouched(self):
        r = record(interested={2: 1}, relay={9: 2})
        out = restrict_record(r, [])
        assert out.total_messages == 3

    def test_eligible_superset_is_noop(self):
        r = record(delivered={2: 1})
        out = restrict_record(r, [2, 3, 4, 99])
        assert out.subscribers == r.subscribers
        assert out.delivered_hops == r.delivered_hops

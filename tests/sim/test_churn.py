"""Tests for churn schedules."""

import random

import pytest

from repro.sim.churn import ChurnEvent, ChurnSchedule, flash_crowd
from repro.sim.engine import Engine


class TestChurnEvent:
    def test_valid_kinds(self):
        ChurnEvent(0.0, 1, "join")
        ChurnEvent(0.0, 1, "leave")

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ChurnEvent(0.0, 1, "reboot")

    def test_negative_time(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, 1, "join")


class TestSchedule:
    def test_sorted_by_time(self):
        s = ChurnSchedule([ChurnEvent(2.0, 1, "join"), ChurnEvent(1.0, 2, "join")])
        assert [e.time for e in s] == [1.0, 2.0]

    def test_horizon(self):
        s = ChurnSchedule([ChurnEvent(5.0, 1, "join")])
        assert s.horizon == 5.0
        assert ChurnSchedule([]).horizon == 0.0

    def test_from_sessions(self):
        s = ChurnSchedule.from_sessions([(1, 0.0, 2.0), (2, 1.0, 3.0)])
        assert len(s) == 4
        kinds = [(e.time, e.kind) for e in s]
        assert kinds == [(0.0, "join"), (1.0, "join"), (2.0, "leave"), (3.0, "leave")]

    def test_from_sessions_rejects_inverted(self):
        with pytest.raises(ValueError):
            ChurnSchedule.from_sessions([(1, 2.0, 1.0)])

    def test_clipped(self):
        s = ChurnSchedule.from_sessions([(1, 0.0, 10.0)])
        assert len(s.clipped(5.0)) == 1

    def test_shifted(self):
        s = ChurnSchedule([ChurnEvent(1.0, 1, "join")]).shifted(2.0)
        assert s.events[0].time == 3.0

    def test_merged(self):
        a = ChurnSchedule([ChurnEvent(1.0, 1, "join")])
        b = ChurnSchedule([ChurnEvent(2.0, 2, "join")])
        assert len(a.merged(b)) == 2


class TestGenerators:
    def test_poisson_alternates_join_leave(self):
        import numpy as np

        rng = np.random.default_rng(1)
        s = ChurnSchedule.poisson(rng, range(10), rate_per_node=0.1, horizon=100, mean_session=5)
        per_node = {}
        for e in s:
            per_node.setdefault(e.address, []).append(e.kind)
        for kinds in per_node.values():
            assert kinds[0] == "join"
            for a, b in zip(kinds, kinds[1:]):
                assert a != b  # strict alternation

    def test_poisson_rejects_bad_rates(self):
        import numpy as np

        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            ChurnSchedule.poisson(rng, [1], rate_per_node=0, horizon=10, mean_session=5)

    def test_flash_crowd(self):
        s = ChurnSchedule.flash_crowd([1, 2, 3], at=10.0)
        assert all(e.time == 10.0 and e.kind == "join" for e in s)

    def test_flash_crowd_with_spread(self, rng):
        s = ChurnSchedule.flash_crowd([1, 2, 3], at=10.0, spread=2.0, rng=rng)
        assert all(10.0 <= e.time <= 12.0 for e in s)

    def test_crashes_mirror_flash_crowd(self):
        s = ChurnSchedule.crashes([1, 2, 3], at=10.0)
        assert all(e.time == 10.0 and e.kind == "leave" for e in s)
        assert sorted(e.address for e in s) == [1, 2, 3]

    def test_crashes_with_spread(self, rng):
        s = ChurnSchedule.crashes([1, 2], at=10.0, spread=2.0, rng=rng)
        assert all(10.0 <= e.time <= 12.0 and e.kind == "leave" for e in s)


class TestSimultaneousJoinCrash:
    """The documented tie-break: at one (time, address) LEAVE sorts before
    JOIN, so a simultaneous crash+restart deterministically nets to
    *online* regardless of construction or merge order."""

    def test_leave_sorts_before_join(self):
        fwd = ChurnSchedule([
            ChurnEvent(5.0, 1, "join"), ChurnEvent(5.0, 1, "leave"),
        ])
        rev = ChurnSchedule([
            ChurnEvent(5.0, 1, "leave"), ChurnEvent(5.0, 1, "join"),
        ])
        assert [e.kind for e in fwd] == ["leave", "join"]
        assert [e.kind for e in rev] == ["leave", "join"]

    def test_merge_order_invariant(self):
        crash = ChurnSchedule.crashes([1], at=5.0)
        restart = ChurnSchedule.flash_crowd([1], at=5.0)
        a = [e.kind for e in crash.merged(restart)]
        b = [e.kind for e in restart.merged(crash)]
        assert a == b == ["leave", "join"]

    def test_applied_pair_leaves_the_node_online(self):
        e = Engine()
        online = set()
        s = ChurnSchedule.crashes([1], at=5.0).merged(
            ChurnSchedule.flash_crowd([1], at=5.0)
        )
        s.apply(e, join=online.add, leave=online.discard)
        e.run()
        assert online == {1}

    def test_distinct_addresses_still_sort_by_address(self):
        s = ChurnSchedule([
            ChurnEvent(5.0, 2, "leave"), ChurnEvent(5.0, 1, "join"),
        ])
        assert [(e.address, e.kind) for e in s] == [(1, "join"), (2, "leave")]


class TestFlashCrowdHelper:
    def test_n_form_joins_the_first_n_addresses(self):
        s = flash_crowd(cycle=4, n=3, period=2.0)
        assert [(e.time, e.address, e.kind) for e in s] == [
            (8.0, 0, "join"), (8.0, 1, "join"), (8.0, 2, "join"),
        ]

    def test_addresses_form(self):
        s = flash_crowd(cycle=1, addresses=[7, 9])
        assert sorted(e.address for e in s) == [7, 9]
        assert all(e.time == 1.0 and e.kind == "join" for e in s)

    def test_spread_jitters_within_the_window(self, rng):
        s = flash_crowd(cycle=10, n=5, spread=2.0, rng=rng)
        assert all(10.0 <= e.time <= 12.0 for e in s)

    @pytest.mark.parametrize("kwargs", [
        {},                              # neither
        {"n": 3, "addresses": [1, 2]},   # both
    ])
    def test_rejects_ambiguous_population(self, kwargs):
        with pytest.raises(ValueError):
            flash_crowd(cycle=1, **kwargs)


class TestApply:
    def test_callbacks_fire_in_order(self):
        e = Engine()
        log = []
        s = ChurnSchedule.from_sessions([(1, 1.0, 3.0), (2, 2.0, 4.0)])
        n = s.apply(e, join=lambda a: log.append(("j", a, e.now)), leave=lambda a: log.append(("l", a, e.now)))
        assert n == 4
        e.run()
        assert log == [("j", 1, 1.0), ("j", 2, 2.0), ("l", 1, 3.0), ("l", 2, 4.0)]

    def test_apply_rejects_past_events(self):
        e = Engine()
        e.schedule(5.0, lambda: None)
        e.run()
        s = ChurnSchedule([ChurnEvent(1.0, 1, "join")])
        with pytest.raises(ValueError):
            s.apply(e, lambda a: None, lambda a: None)

    def test_rejected_apply_schedules_nothing(self):
        """Validation is all-or-nothing: a schedule with one past event
        must not leave its earlier (valid) events on the engine."""
        e = Engine()
        e.schedule(5.0, lambda: None)
        e.run()
        log = []
        s = ChurnSchedule([
            ChurnEvent(6.0, 1, "join"),   # valid at t=5
            ChurnEvent(7.0, 2, "join"),   # valid at t=5
            ChurnEvent(1.0, 3, "join"),   # in the past -> whole apply fails
        ])
        with pytest.raises(ValueError):
            s.apply(e, join=lambda a: log.append(a), leave=lambda a: log.append(a))
        e.run()
        assert log == []
        assert e.now == 5.0  # nothing was scheduled, so time never advanced


class TestPopulationSeries:
    def test_counts_net_population(self):
        s = ChurnSchedule.from_sessions([(1, 0.0, 10.0), (2, 5.0, 10.0)])
        series = dict(s.population_series(resolution=5.0))
        assert series[0.0] == 1
        assert series[5.0] == 2
        assert series[10.0] == 0

    def test_fractional_resolution_reaches_the_horizon(self):
        """Regression: with resolution=0.1, accumulated float error used to
        stop the sampling loop one step short of the horizon, silently
        dropping the trailing events from the series."""
        s = ChurnSchedule.from_sessions([(1, 0.0, 1.0)])
        series = s.population_series(resolution=0.1)
        t_last, pop_last = series[-1]
        assert t_last >= s.horizon
        assert pop_last == 0  # the leave at t=1.0 is included
        # Every event is folded in exactly once overall.
        assert series[0][1] == 1

    def test_empty_schedule_yields_one_sample(self):
        assert ChurnSchedule([]).population_series() == [(0.0, 0)]

"""Tests for the deterministic seed-tree RNG."""

import numpy as np

from repro.sim.rng import SeedTree


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SeedTree(7).generator("x")
        b = SeedTree(7).generator("x")
        assert list(a.integers(1000, size=10)) == list(b.integers(1000, size=10))

    def test_pyrandom_same_seed_same_stream(self):
        a = SeedTree(7).pyrandom("x")
        b = SeedTree(7).pyrandom("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        t = SeedTree(7)
        a = t.generator("x").integers(1 << 60)
        b = t.generator("y").integers(1 << 60)
        assert a != b

    def test_different_seeds_differ(self):
        a = SeedTree(1).generator("x").integers(1 << 60)
        b = SeedTree(2).generator("x").integers(1 << 60)
        assert a != b

    def test_multi_part_names(self):
        t = SeedTree(3)
        a = t.pyrandom("node", 1).random()
        b = t.pyrandom("node", 2).random()
        assert a != b

    def test_repeated_request_restarts_stream(self):
        t = SeedTree(5)
        g1 = t.generator("s")
        first = g1.integers(1 << 30)
        g2 = t.generator("s")
        assert g2.integers(1 << 30) == first


class TestChildTrees:
    def test_child_namespaces_are_independent(self):
        t = SeedTree(11)
        a = t.child("vitis").pyrandom("node", 3).random()
        b = t.child("rvr").pyrandom("node", 3).random()
        assert a != b

    def test_child_deterministic(self):
        a = SeedTree(11).child("vitis").pyrandom("node", 3).random()
        b = SeedTree(11).child("vitis").pyrandom("node", 3).random()
        assert a == b

    def test_child_seed_property(self):
        t = SeedTree(11)
        assert isinstance(t.child("x").seed, int)

    def test_root_seed_property(self):
        assert SeedTree(99).seed == 99


class TestNameHashing:
    def test_string_and_int_names_coexist(self):
        t = SeedTree(0)
        vals = {
            t.pyrandom("a").random(),
            t.pyrandom(1).random(),
            t.pyrandom("a", 1).random(),
            t.pyrandom(1, "a").random(),
        }
        assert len(vals) == 4

    def test_numpy_int_names_match_python_ints(self):
        t = SeedTree(0)
        a = t.pyrandom("n", 5).random()
        b = SeedTree(0).pyrandom("n", np.int64(5)).random()
        assert a == b

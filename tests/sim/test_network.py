"""Tests for the node registry and message transport."""

import pytest

from repro.sim.engine import Engine
from repro.sim.messages import Message, Notification
from repro.sim.network import ConstantLatency, Network, UniformLatency
from repro.sim.node import BaseNode


class Recorder(BaseNode):
    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


def make_net(latency=None):
    e = Engine()
    return e, Network(e, latency)


class TestRegistry:
    def test_register_assigns_sequential_addresses(self):
        _, net = make_net()
        a = net.register(Recorder)
        b = net.register(Recorder)
        assert (a.address, b.address) == (0, 1)

    def test_factory_must_honor_address(self):
        _, net = make_net()
        with pytest.raises(ValueError):
            net.register(lambda addr: Recorder(addr + 1))

    def test_add_external_node(self):
        _, net = make_net()
        n = Recorder(5)
        net.add(n)
        assert net.get(5) is n
        assert net.register(Recorder).address == 6

    def test_add_duplicate_rejected(self):
        _, net = make_net()
        net.add(Recorder(1))
        with pytest.raises(ValueError):
            net.add(Recorder(1))

    def test_get_unknown_returns_none(self):
        _, net = make_net()
        assert net.get(99) is None

    def test_node_unknown_raises(self):
        _, net = make_net()
        with pytest.raises(KeyError):
            net.node(99)

    def test_liveness(self):
        _, net = make_net()
        n = net.register(Recorder)
        assert not net.is_alive(n.address)
        n.start()
        assert net.is_alive(n.address)
        n.stop()
        assert not net.is_alive(n.address)

    def test_live_counts(self):
        _, net = make_net()
        nodes = [net.register(Recorder) for _ in range(4)]
        for n in nodes[:3]:
            n.start()
        assert net.live_count() == 3
        assert len(net.live_nodes()) == 3
        assert len(net) == 4
        assert net.addresses == [0, 1, 2, 3]


class TestTransport:
    def test_send_delivers_via_engine(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Message(src=a.address, dst=b.address))
        assert b.received == []  # not yet: engine hasn't run
        e.run()
        assert len(b.received) == 1

    def test_send_sync_is_immediate(self):
        _, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        assert net.send_sync(Message(src=0, dst=1)) is True
        assert len(b.received) == 1

    def test_drop_to_dead_node(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start()  # b stays down
        net.send(Message(src=0, dst=1))
        e.run()
        assert b.received == []
        assert net.dropped["Message"] == 1

    def test_drop_to_unknown_address(self):
        e, net = make_net()
        a = net.register(Recorder)
        a.start()
        net.send(Message(src=0, dst=77))
        e.run()
        assert net.dropped["Message"] == 1

    def test_traffic_accounting(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Notification(src=0, dst=1, topic=3, size=10))
        e.run()
        assert net.sent["Notification"] == 1
        assert net.delivered["Notification"] == 1
        assert net.bytes_sent == 10

    def test_reset_traffic(self):
        _, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send_sync(Message(src=0, dst=1))
        net.reset_traffic()
        assert net.sent == {} and net.bytes_sent == 0

    def test_constant_latency_delays_delivery(self):
        e = Engine()
        net = Network(e, ConstantLatency(2.5))
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Message(src=0, dst=1))
        e.run()
        assert e.now == 2.5


class TestLatencyModels:
    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_in_range(self, rng):
        m = UniformLatency(1.0, 2.0, rng)
        for _ in range(50):
            assert 1.0 <= m.delay(0, 1) <= 2.0

    def test_uniform_rejects_bad_range(self, rng):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0, rng)


class TestBaseNode:
    def test_joined_at_records_time(self):
        e, net = make_net()
        n = net.register(Recorder)
        e.schedule(5.0, n.start)
        e.run()
        assert n.joined_at == 5.0

    def test_repr(self):
        assert "addr=3" in repr(Recorder(3))

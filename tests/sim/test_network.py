"""Tests for the node registry and message transport."""

import pytest

from repro.sim.engine import Engine
from repro.sim.messages import Message, Notification
from repro.sim.network import ConstantLatency, Network, UniformLatency
from repro.sim.node import BaseNode


class Recorder(BaseNode):
    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


def make_net(latency=None):
    e = Engine()
    return e, Network(e, latency)


class TestRegistry:
    def test_register_assigns_sequential_addresses(self):
        _, net = make_net()
        a = net.register(Recorder)
        b = net.register(Recorder)
        assert (a.address, b.address) == (0, 1)

    def test_factory_must_honor_address(self):
        _, net = make_net()
        with pytest.raises(ValueError):
            net.register(lambda addr: Recorder(addr + 1))

    def test_add_external_node(self):
        _, net = make_net()
        n = Recorder(5)
        net.add(n)
        assert net.get(5) is n
        assert net.register(Recorder).address == 6

    def test_add_duplicate_rejected(self):
        _, net = make_net()
        net.add(Recorder(1))
        with pytest.raises(ValueError):
            net.add(Recorder(1))

    def test_get_unknown_returns_none(self):
        _, net = make_net()
        assert net.get(99) is None

    def test_node_unknown_raises(self):
        _, net = make_net()
        with pytest.raises(KeyError):
            net.node(99)

    def test_liveness(self):
        _, net = make_net()
        n = net.register(Recorder)
        assert not net.is_alive(n.address)
        n.start()
        assert net.is_alive(n.address)
        n.stop()
        assert not net.is_alive(n.address)

    def test_live_counts(self):
        _, net = make_net()
        nodes = [net.register(Recorder) for _ in range(4)]
        for n in nodes[:3]:
            n.start()
        assert net.live_count() == 3
        assert len(net.live_nodes()) == 3
        assert len(net) == 4
        assert net.addresses == [0, 1, 2, 3]


class TestTransport:
    def test_send_delivers_via_engine(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Message(src=a.address, dst=b.address))
        assert b.received == []  # not yet: engine hasn't run
        e.run()
        assert len(b.received) == 1

    def test_send_sync_is_immediate(self):
        _, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        assert net.send_sync(Message(src=0, dst=1)) is True
        assert len(b.received) == 1

    def test_drop_to_dead_node(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start()  # b stays down
        net.send(Message(src=0, dst=1))
        e.run()
        assert b.received == []
        assert net.dropped["Message"] == 1

    def test_drop_to_unknown_address(self):
        e, net = make_net()
        a = net.register(Recorder)
        a.start()
        net.send(Message(src=0, dst=77))
        e.run()
        assert net.dropped["Message"] == 1

    def test_traffic_accounting(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Notification(src=0, dst=1, topic=3, size=10))
        e.run()
        assert net.sent["Notification"] == 1
        assert net.delivered["Notification"] == 1
        assert net.bytes_sent == 10

    def test_reset_traffic(self):
        _, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send_sync(Message(src=0, dst=1))
        net.reset_traffic()
        assert net.sent == {} and net.bytes_sent == 0

    def test_constant_latency_delays_delivery(self):
        e = Engine()
        net = Network(e, ConstantLatency(2.5))
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Message(src=0, dst=1))
        e.run()
        assert e.now == 2.5


class TestPerAddressAccounting:
    def test_sent_delivered_tallies(self):
        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.send(Message(src=0, dst=1))
        net.send(Message(src=0, dst=1))
        net.send(Message(src=1, dst=0))
        e.run()
        assert net.sent_by_addr[0] == 2 and net.sent_by_addr[1] == 1
        assert net.delivered_by_addr[1] == 2 and net.delivered_by_addr[0] == 1

    def test_capacity_shed_is_tallied_per_destination(self):
        from repro.sim.capacity import CapacityModel, NodeCapacity

        e, net = make_net()
        a, b = net.register(Recorder), net.register(Recorder)
        a.start(), b.start()
        net.capacity = CapacityModel(
            NodeCapacity(service_rate=1, queue_depth=1, policy="drop_newest")
        )
        net.send(Message(src=0, dst=1))
        assert net.send_sync(Message(src=0, dst=1)) is False  # inbox full
        e.run()
        assert len(b.received) == 1
        assert net.shed["Message"] == 1
        assert net.shed_by_addr[1] == 1
        assert net.sent_by_addr[0] == 2  # sheds still count as sent

    def test_account_logical_mirrors_the_transport_tallies(self):
        _, net = make_net()
        net.account_logical(3, 4, "notify", delivered=True)
        net.account_logical(3, 4, "notify", delivered=False)
        assert net.sent_by_addr[3] == 2
        assert net.delivered_by_addr[4] == 1
        assert net.shed["notify"] == 1 and net.shed_by_addr[4] == 1

    def test_hotspots_ranks_by_inbound_load(self):
        _, net = make_net()
        for _ in range(5):
            net.account_logical(0, 1, "notify", delivered=True)
        for _ in range(3):
            net.account_logical(0, 2, "notify", delivered=False)
        net.account_logical(0, 3, "notify", delivered=True)
        top = net.hotspots(2)
        assert [h["address"] for h in top] == [1, 2]
        assert top[0] == {"address": 1, "inbound": 5, "delivered": 5,
                          "shed": 0, "sent": 0}
        assert top[1]["shed"] == 3

    def test_hotspots_ties_break_by_address(self):
        # Equal inbound load must order by ascending address regardless
        # of accounting order, so rendered hotspot tables are usable as
        # CI fixtures.
        _, net = make_net()
        for dst in (7, 3, 5):  # deliberately unsorted insertion order
            net.account_logical(0, dst, "notify", delivered=True)
            net.account_logical(1, dst, "notify", delivered=True)
        assert [h["address"] for h in net.hotspots()] == [3, 5, 7]

        # A permuted accounting order yields the identical table.
        _, other = make_net()
        for dst in (5, 7, 3):
            other.account_logical(1, dst, "notify", delivered=True)
            other.account_logical(0, dst, "notify", delivered=True)
        assert other.hotspots() == net.hotspots()

    def test_hotspots_mixed_load_and_ties(self):
        _, net = make_net()
        for _ in range(2):
            net.account_logical(0, 9, "notify", delivered=True)
            net.account_logical(0, 2, "notify", delivered=False)
        net.account_logical(0, 4, "notify", delivered=True)
        # 9 and 2 tie at 2; 4 trails with 1.
        assert [(h["address"], h["inbound"]) for h in net.hotspots()] == \
            [(2, 2), (9, 2), (4, 1)]

    def test_reset_traffic_clears_the_new_tallies(self):
        _, net = make_net()
        net.account_logical(0, 1, "notify", delivered=False)
        net.reset_traffic()
        assert not net.sent_by_addr and not net.delivered_by_addr
        assert not net.shed and not net.shed_by_addr
        assert net.hotspots() == []


class TestDropEvent:
    def test_drop_to_dead_node_emits_counter_and_event(self):
        import io
        import json

        from repro import obs

        e, net = make_net()
        net.register(Recorder).start()
        net.register(Recorder)  # stays down
        buf = io.StringIO()
        tel = obs.Telemetry(trace=buf)
        net.telemetry = tel
        net.send(Message(src=0, dst=1))
        e.run()
        tel.close()
        assert net.dropped["Message"] == 1
        dump = tel.metrics_dump()
        assert dump["metrics"]["counters"][
            "drops_total{kind=Message,site=network}"
        ] == 1.0
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        drops = [ev for ev in events if ev["ev"] == "drop"]
        assert len(drops) == 1
        ev = drops[0]
        assert (ev["site"], ev["kind"], ev["src"], ev["dst"]) == (
            "network", "Message", 0, 1,
        )


class TestLatencyModels:
    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_in_range(self, rng):
        m = UniformLatency(1.0, 2.0, rng)
        for _ in range(50):
            assert 1.0 <= m.delay(0, 1) <= 2.0

    def test_uniform_rejects_bad_range(self, rng):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0, rng)


class TestBaseNode:
    def test_joined_at_records_time(self):
        e, net = make_net()
        n = net.register(Recorder)
        e.schedule(5.0, n.start)
        e.run()
        assert n.joined_at == 5.0

    def test_repr(self):
        assert "addr=3" in repr(Recorder(3))

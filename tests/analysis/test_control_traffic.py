"""Tests for control-plane traffic accounting."""

import pytest

from repro.analysis.control_traffic import (
    estimate_control_messages,
    per_node_link_load,
)
from repro.baselines.opt import OptProtocol
from repro.core.config import VitisConfig
from repro.experiments.runner import build_opt
from repro.workloads.twitter import TwitterTrace
from tests.conftest import small_subscriptions


class TestLinkLoad:
    def test_vitis_load_is_rt_size(self, converged_vitis):
        load = per_node_link_load(converged_vitis)
        assert max(load.values()) <= converged_vitis.config.rt_size

    def test_opt_load_is_negotiated_degree(self):
        opt = build_opt(small_subscriptions(), VitisConfig(rt_size=8), seed=1,
                        cycles=15, max_degree=8)
        load = per_node_link_load(opt)
        assert max(load.values()) <= 8


class TestEstimate:
    def test_components_present(self, converged_vitis):
        est = estimate_control_messages(converged_vitis)
        assert set(est) == {
            "peer_sampling", "topology_exchange", "profiles",
            "relay_maintenance", "total", "per_node",
        }
        assert est["total"] == pytest.approx(
            est["peer_sampling"] + est["topology_exchange"]
            + est["profiles"] + est["relay_maintenance"]
        )

    def test_vitis_cost_bounded_by_rt_size(self, converged_vitis):
        """The paper's point: management cost is independent of the
        subscription count — bounded by 2 + 2 + 2·rt_size plus relay
        refresh."""
        est = estimate_control_messages(converged_vitis)
        p = converged_vitis
        fixed = 4 + 2 * p.config.rt_size
        relay_per_node = est["relay_maintenance"] / p.live_count()
        assert est["per_node"] <= fixed + relay_per_node + 1e-9

    def test_unbounded_opt_costs_grow_with_subscriptions(self):
        """Per-topic coverage forces heavy subscribers into heavy
        maintenance — the section II scalability argument."""
        trace = TwitterTrace(1200, min_out=3, seed=4)
        subs = trace.bfs_sample(200, seed=4).subscriptions()
        opt = build_opt(subs, VitisConfig(rt_size=8), seed=4, cycles=15,
                        max_degree=None)
        load = per_node_link_load(opt)
        heavy = [a for a in load if len(opt.profile_of(a).subscriptions) >= 30]
        light = [a for a in load if len(opt.profile_of(a).subscriptions) <= 5]
        if not heavy or not light:
            pytest.skip("degenerate sample")
        mean = lambda xs: sum(xs) / len(xs)
        assert mean([load[a] for a in heavy]) > 2 * mean([load[a] for a in light])

    def test_empty_population(self):
        opt = OptProtocol([{1}, {2}], VitisConfig(rt_size=3, n_sw_links=0),
                          auto_start=False)
        est = estimate_control_messages(opt)
        assert est["total"] == 0.0


class TestCrossCheckWithDeployment:
    def test_estimator_matches_real_message_counts(self):
        """The per-cycle estimate must be within 2x of what the
        message-driven deployment actually sends (it omits only relay
        refresh fan-out variation and retransmits)."""
        from repro.core.deployment import DeployedVitis
        from repro.workloads.subscriptions import bucket_subscriptions

        subs = bucket_subscriptions(60, 80, n_buckets=8, buckets_per_node=2,
                                    topics_per_bucket=5, seed=6)
        d = DeployedVitis(subs, VitisConfig(rt_size=8), seed=6)
        d.run(30)
        d.network.reset_traffic()
        d.run(10)
        real_per_cycle = sum(d.network.sent.values()) / 10

        est = estimate_control_messages(d)
        # The deployed estimator lacks relay stats; compare the
        # fixed components.
        fixed = est["peer_sampling"] + est["topology_exchange"] + est["profiles"]
        assert 0.5 * fixed < real_per_cycle < 3.0 * fixed

"""Tests for distribution utilities."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    ccdf,
    frequency_histogram,
    gini,
    log_binned_histogram,
)


class TestCcdf:
    def test_monotone_decreasing(self):
        xs, p = ccdf([3, 1, 2, 5, 4])
        assert list(xs) == [1, 2, 3, 4, 5]
        assert all(a >= b for a, b in zip(p, p[1:]))

    def test_starts_at_one(self):
        _, p = ccdf([7, 8, 9])
        assert p[0] == 1.0

    def test_empty(self):
        xs, p = ccdf([])
        assert len(xs) == 0 and len(p) == 0


class TestFrequencyHistogram:
    def test_counts(self):
        assert frequency_histogram([1, 1, 2]) == {1: 2, 2: 1}

    def test_sorted_keys(self):
        h = frequency_histogram([5, 1, 3, 1])
        assert list(h) == [1, 3, 5]


class TestLogBinned:
    def test_density_positive(self):
        rng = np.random.default_rng(0)
        samples = (1 - rng.random(5000)) ** (-1.0 / 1.5)
        centers, density = log_binned_histogram(samples, n_bins=10)
        assert len(centers) == len(density)
        assert (density > 0).all()

    def test_power_law_slope(self):
        """Log-binned density of a power law is a straight line in log-log;
        recover the exponent within tolerance."""
        rng = np.random.default_rng(0)
        alpha = 2.0
        samples = (1 - rng.random(100000)) ** (-1.0 / (alpha - 1.0))
        centers, density = log_binned_histogram(samples, n_bins=12)
        slope, _ = np.polyfit(np.log(centers[:8]), np.log(density[:8]), 1)
        assert slope == pytest.approx(-alpha, abs=0.4)

    def test_degenerate_inputs(self):
        c, d = log_binned_histogram([])
        assert len(c) == 0
        c, d = log_binned_histogram([5.0, 5.0])
        assert list(c) == [5.0] and list(d) == [2.0]

    def test_zero_samples_dropped(self):
        c, d = log_binned_histogram([0, 0, 1, 2, 4])
        assert d.sum() > 0


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_distribution_near_one(self):
        assert gini([0] * 99 + [100]) > 0.9

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    def test_known_value(self):
        # Two-person economy, one holds everything: G = 1/2.
        assert gini([0, 1]) == pytest.approx(0.5)

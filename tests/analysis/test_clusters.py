"""Tests for per-topic cluster analysis."""

from repro.analysis.clusters import cluster_diameter, cluster_stats, topic_clusters


def adj_from_edges(nodes, edges):
    adj = {n: set() for n in nodes}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    return adj


class TestTopicClusters:
    def test_single_component(self):
        adj = adj_from_edges([1, 2, 3], [(1, 2), (2, 3)])
        assert topic_clusters(adj) == [{1, 2, 3}]

    def test_multiple_components_sorted_by_size(self):
        adj = adj_from_edges([1, 2, 3, 4, 5], [(1, 2), (1, 3), (4, 5)])
        assert topic_clusters(adj) == [{1, 2, 3}, {4, 5}]

    def test_singletons(self):
        adj = adj_from_edges([1, 2], [])
        assert topic_clusters(adj) == [{1}, {2}]

    def test_empty(self):
        assert topic_clusters({}) == []


class TestDiameter:
    def test_path_graph(self):
        nodes = list(range(6))
        adj = adj_from_edges(nodes, [(i, i + 1) for i in range(5)])
        assert cluster_diameter(adj, set(nodes)) == 5

    def test_star_graph(self):
        adj = adj_from_edges(range(5), [(0, i) for i in range(1, 5)])
        assert cluster_diameter(adj, set(range(5))) == 2

    def test_singleton(self):
        assert cluster_diameter({1: set()}, {1}) == 0

    def test_double_sweep_on_large_path(self):
        n = 100
        adj = adj_from_edges(range(n), [(i, i + 1) for i in range(n - 1)])
        # Force the double-sweep branch (exact_limit below size).
        assert cluster_diameter(adj, set(range(n)), exact_limit=10) == n - 1

    def test_diameter_restricted_to_members(self):
        # 0-1-2 path, but only {0, 1} are members: diameter 1.
        adj = adj_from_edges([0, 1, 2], [(0, 1), (1, 2)])
        assert cluster_diameter(adj, {0, 1}) == 1


class TestClusterStats:
    def test_stats_over_protocol(self, converged_vitis):
        stats = cluster_stats(converged_vitis)
        assert stats.mean_clusters_per_topic >= 1
        assert stats.mean_cluster_size >= 1
        assert stats.mean_gateways_per_topic >= 1
        d = stats.as_dict()
        assert set(d) == {
            "mean_clusters_per_topic",
            "mean_cluster_size",
            "max_cluster_diameter",
            "mean_gateways_per_topic",
        }

    def test_gateways_at_least_clusters(self, converged_vitis):
        """Every cluster elects at least one gateway, so per topic
        #gateways >= #clusters."""
        p = converged_vitis
        for topic in p.topics()[:15]:
            clusters = topic_clusters(p.cluster_adjacency(topic))
            assert len(p.gateways_of(topic)) >= len(clusters)

    def test_empty_stats(self):
        from repro.analysis.clusters import ClusterStats

        s = ClusterStats()
        assert s.mean_clusters_per_topic == 0.0
        assert s.max_diameter == 0

"""Tests for the routing-probe navigability analysis."""

import pytest

from repro.analysis.navigability import RoutingProbe, expected_bound, routing_probe


class TestExpectedBound:
    def test_grows_with_population(self):
        assert expected_bound(10_000) > expected_bound(100)

    def test_shrinks_with_links(self):
        assert expected_bound(1000, n_sw_links=7) < expected_bound(1000, n_sw_links=1)

    def test_degenerate_population(self):
        assert expected_bound(1) > 0


class TestRoutingProbe:
    def test_probe_on_converged_overlay(self, converged_vitis):
        probe = routing_probe(converged_vitis, n_samples=120, seed=1)
        assert probe.success_rate == 1.0
        # Lookup consistency: every probe ends at the true rendezvous.
        assert probe.consistency_rate == 1.0
        # Within the theoretical yardstick.
        bound = expected_bound(
            converged_vitis.live_count(), converged_vitis.config.n_sw_links
        )
        assert probe.mean_hops <= bound

    def test_probe_deterministic(self, converged_vitis):
        a = routing_probe(converged_vitis, n_samples=50, seed=3).as_dict()
        b = routing_probe(converged_vitis, n_samples=50, seed=3).as_dict()
        assert a == b

    def test_percentile_ordering(self, converged_vitis):
        probe = routing_probe(converged_vitis, n_samples=100, seed=1)
        assert probe.p95_hops >= probe.mean_hops

    def test_empty_population(self):
        class Dead:
            def live_addresses(self):
                return []

        probe = routing_probe(Dead(), n_samples=10)
        assert probe.samples == 0
        assert probe.success_rate == 1.0

    def test_as_dict_keys(self, converged_vitis):
        d = routing_probe(converged_vitis, n_samples=20, seed=1).as_dict()
        assert set(d) == {
            "samples", "success_rate", "consistency_rate", "mean_hops", "p95_hops",
        }

"""Tests for the failure-injection robustness probes."""

import numpy as np
import pytest

from repro.analysis.robustness import failure_sweep, kill_fraction


class TestKillFraction:
    def test_kills_requested_share(self, converged_vitis):
        rng = np.random.default_rng(1)
        before = converged_vitis.live_count()
        victims = kill_fraction(converged_vitis, 0.25, rng)
        try:
            assert len(victims) == int(before * 0.25)
            assert converged_vitis.live_count() == before - len(victims)
        finally:
            for a in victims:
                converged_vitis.nodes[a].start()
            converged_vitis.topology_version += 1  # refresh caches

    def test_zero_fraction_noop(self, converged_vitis):
        rng = np.random.default_rng(1)
        assert kill_fraction(converged_vitis, 0.0, rng) == []

    def test_validation(self, converged_vitis):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            kill_fraction(converged_vitis, 1.5, rng)
        with pytest.raises(ValueError):
            kill_fraction(converged_vitis, -0.1, rng)

    def test_full_fraction_kills_everyone(self, converged_vitis):
        """fraction == 1.0 is explicitly allowed: total wipeout."""
        rng = np.random.default_rng(1)
        victims = kill_fraction(converged_vitis, 1.0, rng)
        try:
            assert converged_vitis.live_count() == 0
        finally:
            for a in victims:
                converged_vitis.nodes[a].start()
            converged_vitis.topology_version += 1  # refresh caches


class TestFailureSweep:
    def test_population_restored(self, converged_vitis):
        before = converged_vitis.live_count()
        failure_sweep(converged_vitis, fractions=(0.2, 0.4), events_per_point=20, seed=2)
        assert converged_vitis.live_count() == before

    def test_delivery_degrades_monotonically_ish(self, converged_vitis):
        rows = failure_sweep(
            converged_vitis, fractions=(0.0, 0.3), events_per_point=60, seed=2
        )
        by = {r["killed_fraction"]: r for r in rows}
        assert by[0.0]["hit_ratio"] == pytest.approx(1.0)
        assert by[0.3]["hit_ratio"] <= by[0.0]["hit_ratio"]

    def test_vitis_degrades_gracefully(self, converged_vitis):
        """Cluster meshes give redundant paths: surviving subscribers
        keep most delivery even when 30% of nodes vanish un-repaired."""
        rows = failure_sweep(
            converged_vitis, fractions=(0.3,), events_per_point=80, seed=2
        )
        assert rows[0]["hit_ratio"] > 0.75

    def test_vitis_beats_rvr_without_repair(self):
        """The mechanism behind the Fig. 12 flash-crowd gap, isolated:
        on frozen overlays Vitis out-survives tree-only RVR."""
        from repro.baselines.rvr import RvrProtocol
        from repro.core.config import VitisConfig
        from repro.core.protocol import VitisProtocol
        from tests.conftest import small_subscriptions

        subs = small_subscriptions(seed=21)
        results = {}
        for name, cls, kw in (
            ("vitis", VitisProtocol, dict(election_every=0, relay_every=0)),
            ("rvr", RvrProtocol, dict(relay_every=0)),
        ):
            p = cls(subs, VitisConfig(rt_size=10), seed=21, **kw)
            p.run_cycles(45)
            p.finalize()
            rows = failure_sweep(p, fractions=(0.25,), events_per_point=80, seed=3)
            results[name] = rows[0]["hit_ratio"]
        assert results["vitis"] >= results["rvr"]

    def test_rows_shape(self, converged_vitis):
        rows = failure_sweep(converged_vitis, fractions=(0.1,), events_per_point=10, seed=2)
        assert set(rows[0]) == {
            "system", "killed_fraction", "events", "hit_ratio", "mean_delay_hops",
        }

"""Tests for networkx exports and overlay structure metrics."""

import networkx as nx
import pytest

from repro.analysis.graphs import (
    overlay_digraph,
    relay_tree_graph,
    smallworld_stats,
    to_dot,
)
from repro.core.routing_table import LinkKind


class TestOverlayDigraph:
    def test_all_live_nodes_present(self, converged_vitis):
        g = overlay_digraph(converged_vitis)
        assert set(g.nodes) == set(converged_vitis.live_addresses())

    def test_edge_count_matches_tables(self, converged_vitis):
        g = overlay_digraph(converged_vitis)
        expected = sum(
            len(converged_vitis.nodes[a].rt)
            for a in converged_vitis.live_addresses()
        )
        assert g.number_of_edges() == expected

    def test_kind_filter(self, converged_vitis):
        ring = overlay_digraph(
            converged_vitis, kinds=[LinkKind.SUCCESSOR, LinkKind.PREDECESSOR]
        )
        kinds = {d["kind"] for _, _, d in ring.edges(data=True)}
        assert kinds <= {"successor", "predecessor"}
        # The successor subgraph alone is a single cycle over the ring.
        succ = overlay_digraph(converged_vitis, kinds=[LinkKind.SUCCESSOR])
        assert all(d == 1 for _, d in succ.out_degree())

    def test_node_attributes(self, converged_vitis):
        g = overlay_digraph(converged_vitis)
        a = next(iter(g.nodes))
        assert "node_id" in g.nodes[a]
        assert g.nodes[a]["n_subscriptions"] > 0


class TestRelayTreeGraph:
    def test_tree_shape(self, converged_vitis):
        p = converged_vitis
        topic = max(p.topics(), key=lambda t: len(p.subscribers(t)))
        g = relay_tree_graph(p, topic)
        # Parent pointers: out-degree at most 1, and the graph is a forest
        # (no directed cycles).
        assert all(d <= 1 for _, d in g.out_degree())
        assert nx.is_directed_acyclic_graph(g)

    def test_roles_assigned(self, converged_vitis):
        p = converged_vitis
        topic = max(p.topics(), key=lambda t: len(p.subscribers(t)))
        g = relay_tree_graph(p, topic)
        roles = {d["role"] for _, d in g.nodes(data=True)}
        assert "subscriber" in roles or "gateway" in roles

    def test_subscribers_included_even_off_tree(self, converged_vitis):
        p = converged_vitis
        topic = p.topics()[0]
        g = relay_tree_graph(p, topic)
        assert p.subscribers(topic) <= set(g.nodes)


class TestSmallworldStats:
    def test_keys_and_ranges(self, converged_vitis):
        s = smallworld_stats(converged_vitis)
        assert 0 <= s["clustering"] <= 1
        assert s["avg_path_length"] >= 1
        assert s["nodes"] == converged_vitis.live_count()

    def test_friend_clustering_beats_random(self, converged_vitis):
        """The similarity links create more triangles than a random graph
        of the same density — the 'clusters of grapes'.  The test fixture
        is small and dense (80 nodes, degree 10), where even random
        clustering is substantial, so the margin is modest; at paper
        scale the ratio is far larger."""
        s = smallworld_stats(converged_vitis)
        assert s["clustering"] > 1.2 * s["random_clustering"]
        assert s["clustering"] > 0.2

    def test_paths_stay_short(self, converged_vitis):
        s = smallworld_stats(converged_vitis)
        assert s["avg_path_length"] < 3 * s["random_path_length"]


class TestDot:
    def test_renders_nodes_and_edges(self, converged_vitis):
        g = overlay_digraph(converged_vitis, kinds=[LinkKind.SUCCESSOR])
        dot = to_dot(g, name="ring")
        assert dot.startswith("digraph ring {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == g.number_of_edges()

    def test_role_shapes(self, converged_vitis):
        p = converged_vitis
        topic = max(p.topics(), key=lambda t: len(p.subscribers(t)))
        dot = to_dot(relay_tree_graph(p, topic))
        assert "shape=" in dot

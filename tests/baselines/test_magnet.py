"""Tests for the Magnet-like baseline (1-D structured subscription
clustering) — and for the paper's criticism of it."""

import math

import pytest

from repro.baselines.magnet import MagnetProtocol, interest_embedding
from repro.baselines.rvr import RvrProtocol
from repro.core.config import VitisConfig
from repro.core.identifiers import IdSpace
from repro.experiments.runner import build_vitis, converge, measure
from repro.smallworld.ring import is_ring_converged
from repro.workloads.subscriptions import high_correlation_subscriptions

SPACE = IdSpace()


N_TOPICS = 100


def embed(subs, address):
    return interest_embedding(SPACE, frozenset(subs), address, N_TOPICS)


def topic_position(t):
    """Where topic t sits in interest space (not its hashed id)."""
    return int(SPACE.size * (t % N_TOPICS) / N_TOPICS)


class TestInterestEmbedding:
    def test_identical_interests_embed_nearby(self):
        a = embed({1, 2, 3}, address=10)
        b = embed({1, 2, 3}, address=20)
        assert SPACE.fraction(a, b) < 1e-3  # only jitter apart

    def test_distinct_addresses_break_ties(self):
        assert embed({1, 2, 3}, 10) != embed({1, 2, 3}, 20)

    def test_single_topic_sits_on_topic(self):
        t = 7
        assert SPACE.fraction(embed({t}, 1), topic_position(t)) < 1e-3

    def test_adjacent_topics_embed_adjacent(self):
        """Bucket structure survives: consecutive topics map to nearby
        positions (the property the hashed-id average lacks)."""
        assert SPACE.fraction(embed({10, 11}, 1), topic_position(10)) < 0.05

    def test_empty_subscriptions_fall_back_to_hash(self):
        assert embed(set(), 3) == SPACE.node_id(3)

    def test_deterministic(self):
        assert embed({5, 9}, 2) == embed({9, 5}, 2)

    def test_multi_community_interests_average_away(self):
        """The 1-D failure mode: a node following two far-apart topic
        communities sits near *neither* — its embedding is the midpoint."""
        t1, t2 = 10, 35  # a quarter-circle apart in interest space
        pos = embed({t1, t2}, 1)
        assert SPACE.fraction(pos, topic_position(t1)) > 0.05
        assert SPACE.fraction(pos, topic_position(t2)) > 0.05

    def test_antipodal_interests_fall_back(self):
        t1, t2 = 0, N_TOPICS // 2  # exactly opposite
        assert embed({t1, t2}, 3) == SPACE.node_id(3)


class TestMagnetSystem:
    @pytest.fixture(scope="class")
    def workload(self):
        return high_correlation_subscriptions(120, 300, seed=13)

    @pytest.fixture(scope="class")
    def magnet(self, workload):
        p = MagnetProtocol(workload, VitisConfig(rt_size=10), seed=13, relay_every=0)
        converge(p)
        p.finalize()
        return p

    def test_ring_converges_on_embedded_ids(self, magnet):
        assert is_ring_converged(magnet.ids_by_address(), magnet.successor_map())

    def test_full_delivery(self, magnet):
        col = measure(magnet, 150, seed=14)
        assert col.hit_ratio() == pytest.approx(1.0, abs=0.01)

    def test_similar_nodes_are_ring_adjacent(self, magnet, workload):
        """Subscription clustering in the id space: ring neighbors share
        far more interests than random pairs."""
        import random

        rng = random.Random(1)
        succ = magnet.successor_map()
        live = magnet.live_addresses()

        def jac(a, b):
            sa = magnet.profile_of(a).subscriptions
            sb = magnet.profile_of(b).subscriptions
            u = len(sa | sb)
            return len(sa & sb) / u if u else 0.0

        ring_sim = sum(jac(a, succ[a]) for a in live if succ[a] is not None) / len(live)
        rand_sim = sum(
            jac(rng.choice(live), rng.choice(live)) for _ in range(len(live))
        ) / len(live)
        assert ring_sim > 2 * rand_sim

    def test_beats_rvr_but_loses_to_vitis(self, magnet, workload):
        """The paper's section II ordering on correlated workloads:
        Vitis ≪ Magnet ≤ RVR in traffic overhead — the 1-D embedding
        captures some correlation, the hybrid captures far more."""
        col_m = measure(magnet, 150, seed=14)

        rvr = RvrProtocol(workload, VitisConfig(rt_size=10), seed=13, relay_every=0)
        converge(rvr)
        rvr.finalize()
        col_r = measure(rvr, 150, seed=14)

        vitis = build_vitis(workload, VitisConfig(rt_size=10), seed=13)
        col_v = measure(vitis, 150, seed=14)

        assert col_m.traffic_overhead_pct() <= col_r.traffic_overhead_pct()
        assert col_v.traffic_overhead_pct() < 0.5 * col_m.traffic_overhead_pct()

"""Tests for the RVR (Scribe-like) baseline."""

import pytest

from repro.baselines.rvr import RvrProtocol
from repro.core.config import VitisConfig
from repro.core.routing_table import LinkKind
from repro.smallworld.ring import is_ring_converged
from tests.conftest import small_subscriptions


@pytest.fixture(scope="module")
def rvr():
    p = RvrProtocol(
        small_subscriptions(),
        VitisConfig(rt_size=10),
        seed=42,
        relay_every=0,
    )
    p.run_cycles(50)
    p.finalize()
    return p


class TestStructure:
    def test_no_friend_links(self, rvr):
        for a in rvr.live_addresses():
            kinds = [e.kind for e in rvr.nodes[a].rt]
            assert LinkKind.FRIEND not in kinds

    def test_all_slots_structural(self, rvr):
        assert rvr.config.n_sw_links == rvr.config.rt_size - 2
        assert rvr.config.n_friends == 0

    def test_ring_converges(self, rvr):
        assert is_ring_converged(rvr.ids_by_address(), rvr.successor_map())

    def test_no_gateway_election(self, rvr):
        # Gateways are simply the subscribers.
        topic = rvr.topics()[0]
        assert rvr.gateways_of(topic) == sorted(rvr.subscribers(topic))

    def test_no_cluster_adjacency(self, rvr):
        assert rvr.cluster_adjacency(rvr.topics()[0]) == {}


class TestTrees:
    def test_every_subscriber_on_tree_or_rendezvous(self, rvr):
        for topic in rvr.topics()[:25]:
            subs = rvr.subscribers(topic)
            rdv = rvr.rendezvous_of(topic)
            for a in subs:
                node = rvr.nodes[a]
                assert node.relay.on_tree(topic) or a == rdv

    def test_tree_size_at_least_subscribers(self, rvr):
        topic = max(rvr.topics(), key=lambda t: len(rvr.subscribers(t)))
        n_subs = len(rvr.subscribers(topic))
        assert rvr.tree_size(topic) >= n_subs - 1


class TestDissemination:
    def test_full_hit_ratio(self, rvr):
        for topic in rvr.topics()[:30]:
            subs = sorted(rvr.subscribers(topic))
            if not subs:
                continue
            rec = rvr.publish(topic, subs[0])
            assert rec.hit_ratio() == 1.0, f"topic {topic}"

    def test_relay_traffic_exists(self, rvr):
        """Scribe trees route through uninterested intermediaries."""
        total_relay = 0
        for topic in rvr.topics()[:30]:
            subs = sorted(rvr.subscribers(topic))
            if subs:
                total_relay += rvr.publish(topic, subs[0]).total_relay_messages
        assert total_relay > 0

    def test_off_tree_publisher_routes_to_rendezvous(self, rvr):
        topic = rvr.topics()[0]
        subs = rvr.subscribers(topic)
        outsider = next(
            a for a in rvr.live_addresses()
            if a not in subs and not rvr.nodes[a].relay.on_tree(topic)
        )
        rec = rvr.publish(topic, outsider)
        assert rec.hit_ratio() == 1.0
        assert rec.total_relay_messages > 0

"""Tests for the OPT (SpiderCast-like) baseline."""

import pytest

from repro.baselines.opt import OptProtocol
from repro.core.config import VitisConfig
from tests.conftest import small_subscriptions


@pytest.fixture(scope="module")
def opt():
    p = OptProtocol(small_subscriptions(), VitisConfig(rt_size=8), seed=42, max_degree=8)
    p.run_cycles(30)
    return p


@pytest.fixture(scope="module")
def opt_unbounded():
    p = OptProtocol(small_subscriptions(), VitisConfig(rt_size=8), seed=42, max_degree=None)
    p.run_cycles(30)
    return p


class TestDegreeBound:
    def test_negotiated_degree_never_exceeds_bound(self, opt):
        assert max(opt.degree_distribution()) <= 8

    def test_desired_neighbors_bounded_too(self, opt):
        for a in opt.live_addresses():
            assert len(opt.nodes[a].neighbors) <= 8

    def test_unbounded_can_exceed(self, opt_unbounded):
        assert max(opt_unbounded.degree_distribution()) > 8

    def test_default_budget_is_rt_size(self):
        p = OptProtocol([{1}, {1}], VitisConfig(rt_size=5))
        assert p.nodes[0].max_degree == 5


class TestLinkSemantics:
    def test_links_only_with_shared_topics(self, opt):
        adj = opt.undirected_adjacency()
        for a, neigh in adj.items():
            pa = opt.profile_of(a)
            for b in neigh:
                assert pa.subscriptions & opt.profile_of(b).subscriptions

    def test_adjacency_symmetric(self, opt):
        adj = opt.undirected_adjacency()
        for a, neigh in adj.items():
            for b in neigh:
                assert a in adj[b]

    def test_topic_subgraph_members_subscribe(self, opt):
        topic = opt.topics()[0]
        sg = opt.topic_subgraph(topic)
        for a in sg:
            assert opt.profile_of(a).subscribes_to(topic)


class TestDissemination:
    def test_zero_traffic_overhead(self, opt):
        """OPT's defining property: only subscribers handle messages."""
        for topic in opt.topics()[:20]:
            subs = sorted(opt.subscribers(topic))
            if not subs:
                continue
            rec = opt.publish(topic, subs[0])
            assert rec.total_relay_messages == 0

    def test_unbounded_reaches_everyone(self, opt_unbounded):
        missed = 0
        total = 0
        for topic in opt_unbounded.topics():
            subs = sorted(opt_unbounded.subscribers(topic))
            if len(subs) < 2:
                continue
            rec = opt_unbounded.publish(topic, subs[0])
            total += rec.n_subscribers
            missed += rec.n_subscribers - rec.n_delivered
        assert total > 0
        assert missed / total < 0.02  # coverage keeps subgraphs connected

    def test_bounded_may_miss(self, opt):
        """With a tight budget some topic subgraphs disconnect — the
        paper's core criticism of correlation-only overlays."""
        ratios = []
        for topic in opt.topics():
            subs = sorted(opt.subscribers(topic))
            if len(subs) < 2:
                continue
            rec = opt.publish(topic, subs[0])
            ratios.append(rec.hit_ratio())
        assert min(ratios) <= 1.0
        # The *aggregate* should be below the unbounded variant's.
        assert sum(ratios) / len(ratios) <= 1.0

    def test_external_publisher_uses_access_point(self, opt):
        topic = opt.topics()[0]
        subs = opt.subscribers(topic)
        outsider = next(a for a in opt.live_addresses() if a not in subs)
        rec = opt.publish(topic, outsider)
        # Messages were delivered (to at least the access point) and all
        # of them to interested nodes only.
        assert rec.total_messages >= 1
        assert rec.total_relay_messages == 0

    def test_publish_on_empty_topic(self, opt):
        empty_topic = 10_000
        rec = opt.publish(empty_topic, opt.live_addresses()[0])
        assert rec.hit_ratio() == 1.0
        assert rec.total_messages == 0


class TestChurn:
    def test_leave_and_prune(self):
        p = OptProtocol(small_subscriptions(), VitisConfig(rt_size=8), seed=7)
        p.run_cycles(10)
        victim = p.live_addresses()[0]
        p.leave(victim)
        p.run_cycles(3)
        for a in p.live_addresses():
            assert victim not in p.nodes[a].neighbors

    def test_rejoin(self):
        p = OptProtocol(small_subscriptions(), VitisConfig(rt_size=8), seed=7)
        p.run_cycles(10)
        victim = p.live_addresses()[0]
        p.leave(victim)
        p.run_cycles(2)
        p.join(victim)
        p.run_cycles(5)
        assert p.nodes[victim].neighbors  # reconnected

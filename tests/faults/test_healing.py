"""Tests for the healing policy, the retry helper, and the faulted
network transport."""

import random

import pytest

from repro.faults.healing import HealingPolicy, send_with_retries
from repro.faults.models import FaultModel, MessageLoss, SlowLinks
from repro.sim.engine import Engine
from repro.sim.messages import Notification
from repro.sim.network import Network
from repro.sim.node import BaseNode


class _ScriptedDrops(FaultModel):
    """Drops exactly the first ``n`` transmissions offered to it."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self._remaining = n

    def drop(self, src, dst, kind, now):
        if self._remaining > 0:
            self._remaining -= 1
            self.injected += 1
            return True
        return False


class TestHealingPolicy:
    def test_defaults_valid(self):
        p = HealingPolicy()
        assert p.lookup_attempts >= 1 and p.repair_relays

    def test_validation(self):
        with pytest.raises(ValueError):
            HealingPolicy(lookup_attempts=0)
        with pytest.raises(ValueError):
            HealingPolicy(backoff_base=-1)
        with pytest.raises(ValueError):
            HealingPolicy(delivery_retries=-1)

    def test_immutable(self):
        p = HealingPolicy()
        with pytest.raises(Exception):
            p.lookup_attempts = 5

    def test_backoff_doubles(self):
        p = HealingPolicy(backoff_base=2)
        assert [p.backoff_cycles(a) for a in (0, 1, 2, 3)] == [0, 2, 4, 8]


class TestSendWithRetries:
    def test_clean_send_spends_no_retry(self):
        fm = _ScriptedDrops(0)
        assert send_with_retries(fm, 1, 2, "notify", 0.0, tries=3) == (True, 0)

    def test_recovers_within_budget(self):
        fm = _ScriptedDrops(2)
        delivered, drops = send_with_retries(fm, 1, 2, "notify", 0.0, tries=3)
        assert delivered and drops == 2

    def test_lost_for_good(self):
        fm = _ScriptedDrops(5)
        delivered, drops = send_with_retries(fm, 1, 2, "notify", 0.0, tries=3)
        assert not delivered and drops == 3
        assert fm.injected == 3  # budget bounds the transmissions offered


class _SinkNode(BaseNode):
    def __init__(self, address: int) -> None:
        super().__init__(address)
        self.received = []

    def on_message(self, msg) -> None:
        self.received.append(msg)


def _two_node_net():
    engine = Engine()
    net = Network(engine)
    a = net.add(_SinkNode(0))
    b = net.add(_SinkNode(1))
    a.start()
    b.start()
    return engine, net, a, b


class TestNetworkFaultHook:
    def test_drop_counted_never_delivered(self):
        engine, net, _, b = _two_node_net()
        net.fault_model = MessageLoss(1.0, random.Random(0))
        net.send(Notification(src=0, dst=1))
        engine.run()
        assert b.received == []
        assert net.faulted["Notification"] == 1
        assert net.delivered["Notification"] == 0
        assert net.sent["Notification"] == 1  # still charged as traffic

    def test_send_sync_reports_the_drop(self):
        _, net, _, b = _two_node_net()
        net.fault_model = MessageLoss(1.0, random.Random(0))
        assert net.send_sync(Notification(src=0, dst=1)) is False
        assert b.received == []
        assert net.faulted["Notification"] == 1

    def test_extra_delay_applied(self):
        engine, net, _, b = _two_node_net()
        net.fault_model = SlowLinks(3.0, slow_fraction=1.0)
        net.send(Notification(src=0, dst=1))
        engine.run()
        assert len(b.received) == 1
        assert engine.now == pytest.approx(3.0)

    def test_no_model_is_the_perfect_transport(self):
        engine, net, _, b = _two_node_net()
        assert net.fault_model is None
        net.send(Notification(src=0, dst=1))
        engine.run()
        assert len(b.received) == 1
        assert net.faulted == {}

    def test_reset_traffic_clears_fault_counts(self):
        _, net, _, _ = _two_node_net()
        net.fault_model = MessageLoss(1.0, random.Random(0))
        net.send_sync(Notification(src=0, dst=1))
        net.reset_traffic()
        assert net.faulted == {}

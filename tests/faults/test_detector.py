"""SWIM failure detection (repro.faults.detector).

Covers the config knobs, the suspicion → refutation / confirmation state
machine against planted fault models, the attach/detach liveness-swap
contract (including detached byte-identity — the zero-cost-off promise),
false-eviction bookkeeping with the planted-topology delivery audit, and
the graceful-rejoin path.
"""

import io
import json
import random

import pytest

from repro import obs
from repro.core.config import VitisConfig
from repro.core.dissemination import disseminate
from repro.core.protocol import VitisProtocol
from repro.faults import (
    DetectorConfig,
    FaultModel,
    HealingPolicy,
    MessageLoss,
    SwimDetector,
    crash_nodes,
)
from repro.faults.detector import STATE_ALIVE, STATE_DEAD, STATE_SUSPECT
from repro.obs.audit import audit_trace
from tests.conftest import small_subscriptions


def _small_vitis(seed: int = 5, cycles: int = 40, telemetry=None):
    p = VitisProtocol(
        small_subscriptions(seed=seed),
        VitisConfig(rt_size=10, n_sw_links=1),
        seed=seed,
        election_every=0,
        relay_every=0,
        telemetry=telemetry,
    )
    p.run_cycles(cycles)
    p.finalize()
    return p


def _detector(seed: int = 0, **knobs) -> SwimDetector:
    return SwimDetector(random.Random(seed), DetectorConfig(**knobs))


class _Deafen(FaultModel):
    """Drops every probe-protocol leg touching ``target`` (so the target
    looks dead to all probes) while letting suspicion notices and
    refutations through — the exact shape that must *refute*, not evict."""

    def __init__(self, target: int) -> None:
        super().__init__()
        self.target = target

    def drop(self, src, dst, kind, now):
        if kind in ("probe", "probe_req", "ack") and self.target in (src, dst):
            self.injected += 1
            return True
        return False


class _Mute(FaultModel):
    """Like :class:`_Deafen` but also eats the suspicion notices and the
    refutations of ``target`` — a node that can neither hear nor answer
    its obituary must be confirmed dead even while ground-truth alive."""

    def __init__(self, target: int) -> None:
        super().__init__()
        self.target = target

    def drop(self, src, dst, kind, now):
        if kind in ("probe", "probe_req", "ack", "suspect", "refute") \
                and self.target in (src, dst):
            self.injected += 1
            return True
        return False


class TestDetectorConfig:
    def test_defaults(self):
        cfg = DetectorConfig()
        assert cfg.probe_fanout == 3
        assert cfg.suspicion_base == 0.5
        assert cfg.min_suspicion_cycles == 2

    def test_suspicion_scales_with_log_n(self):
        cfg = DetectorConfig(suspicion_base=1.0, min_suspicion_cycles=1)
        assert cfg.suspicion_cycles(2) == 1
        assert cfg.suspicion_cycles(1024) == 10
        assert cfg.suspicion_cycles(2048) > cfg.suspicion_cycles(64)

    def test_floor_applies_to_tiny_groups(self):
        cfg = DetectorConfig(suspicion_base=0.5, min_suspicion_cycles=4)
        assert cfg.suspicion_cycles(2) == 4
        assert cfg.suspicion_cycles(1) == 4  # degenerate n clamps to 2

    @pytest.mark.parametrize("knobs", [
        {"probe_fanout": -1},
        {"suspicion_base": -0.1},
        {"min_suspicion_cycles": 0},
    ])
    def test_rejects_bad_knobs(self, knobs):
        with pytest.raises(ValueError):
            DetectorConfig(**knobs)


class TestAttachDetach:
    def test_attach_swaps_the_liveness_predicate(self):
        p = _small_vitis(cycles=5)
        assert p.liveness == p.is_alive
        det = _detector()
        p.attach_detector(det)
        assert p.detector is det and det.protocol is p
        assert p.liveness == p._detector_liveness
        p.attach_detector(None)
        assert p.detector is None
        assert p.liveness == p.is_alive

    def test_detached_runs_are_byte_identical(self):
        """Attach-then-detach must leave no trace: routing tables and
        dissemination records match a run that never saw a detector."""
        def run(touch_detector: bool):
            p = _small_vitis()
            if touch_detector:
                p.attach_detector(_detector())
                p.attach_detector(None)
            p.run_cycles(10)
            topic = p.topics()[0]
            pub = sorted(p.subscribers(topic))[0]
            rec = p.publish(topic, pub)
            tables = {a: sorted(n.rt.addresses) for a, n in p.nodes.items()}
            return tables, sorted(rec.delivered_hops.items())

        assert run(False) == run(True)

    def test_detached_runs_consume_no_detector_rng(self):
        class _NoDraw:
            def choice(self, *_):  # pragma: no cover - regression only
                raise AssertionError("detached detector must not draw")
            shuffle = choice

        p = _small_vitis(cycles=5)
        p.attach_detector(SwimDetector(_NoDraw()))
        p.attach_detector(None)
        p.run_cycles(5)


class TestCrashConfirmation:
    def test_crashed_node_is_confirmed_and_purged(self):
        p = _small_vitis()
        det = _detector()
        p.attach_detector(det)
        victim = sorted(p.live_addresses())[3]
        crash_nodes(p, (victim,))
        p.run_cycles(12)
        assert det.state_of(victim) == STATE_DEAD
        assert det.confirmations >= 1
        assert victim in det.confirmed_at
        for a in p.live_addresses():
            assert victim not in p.nodes[a].rt
        # A genuinely dead eviction is never a false positive.
        assert p.false_evictions == 0
        assert p.fault_evictions >= 1
        assert not p.liveness(victim)

    def test_confirmed_node_is_shunned_by_liveness_only(self):
        p = _small_vitis()
        det = _detector()
        p.attach_detector(det)
        target = sorted(p.live_addresses())[0]
        det.force_confirm(target)
        assert p.is_alive(target)       # ground truth unchanged
        assert not p.liveness(target)   # the overlay acts on the verdict


class TestRefutation:
    def test_suspected_but_live_node_refutes_instead_of_dying(self):
        p = _small_vitis()
        det = _detector()
        p.attach_detector(det)
        target = sorted(p.live_addresses())[10]
        p.attach_faults(_Deafen(target), HealingPolicy())
        p.run_cycles(25)
        # Probes to the target all failed, so it was suspected — but the
        # refutation path cleared every suspicion before its deadline.
        assert det.probe_misses > 0
        assert det.suspicions >= 1
        assert det.refutations >= 1
        assert det.confirmations == 0
        assert det.state_of(target) in (STATE_ALIVE, STATE_SUSPECT)
        assert p.false_evictions == 0
        # Each refutation of the target rode an incarnation bump (total
        # order of verdicts about one node).
        assert det.incarnation(target) >= 1

    def test_unhearable_node_is_falsely_confirmed(self):
        """The converse: when the obituary can neither be heard nor
        answered, SWIM *does* evict a live node — and books it as false."""
        p = _small_vitis()
        det = _detector()
        p.attach_detector(det)
        target = sorted(p.live_addresses())[10]
        p.attach_faults(_Mute(target), HealingPolicy())
        p.run_cycles(25)
        assert det.state_of(target) == STATE_DEAD
        assert p.false_evictions >= 1
        assert target in p.false_eviction_log
        assert any(target in e for e in p.false_evicted_edges)


class TestGracefulRejoin:
    def test_rejoin_clears_verdict_and_bumps_incarnation(self):
        p = _small_vitis()
        det = _detector()
        p.attach_detector(det)
        victim = sorted(p.live_addresses())[3]
        crash_nodes(p, (victim,))
        p.run_cycles(12)
        assert det.state_of(victim) == STATE_DEAD
        inc = det.incarnation(victim)
        p.rejoin(victim)
        assert p.is_alive(victim) and p.liveness(victim)
        assert det.state_of(victim) == STATE_ALIVE
        assert det.incarnation(victim) == inc + 1
        assert det.rejoins == 1

    def test_rejoin_clears_false_eviction_bookkeeping(self):
        p = _small_vitis()
        det = _detector()
        p.attach_detector(det)
        target = sorted(p.live_addresses())[0]
        det.force_confirm(target)
        assert target in p.false_eviction_log
        p.rejoin(target)
        assert target not in p.false_eviction_log
        assert not any(target in e for e in p.false_evicted_edges)

    def test_vitis_rejoin_reinstalls_relay_delivery(self):
        p = _small_vitis()
        victim = None
        for t in p.topics():
            subs = sorted(p.subscribers(t))
            if len(subs) >= 3:
                victim, topic = subs[-1], t
                break
        assert victim is not None
        crash_nodes(p, (victim,))
        p.run_cycles(8)
        p.rejoin(victim)
        p.run_cycles(2)
        rec = p.publish(topic, sorted(p.subscribers(topic))[0])
        assert victim in rec.delivered_hops


class TestFalseEvictionAudit:
    """Satellite: the planted-topology audit — a miss caused by a wrongly
    evicted live node must be attributed to ``false_eviction``."""

    def test_planted_false_eviction_is_attributed(self):
        buf = io.StringIO()
        tel = obs.Telemetry(trace=obs.TraceWriter(buf, flush_every=1))
        p = _small_vitis(telemetry=tel)
        det = _detector()
        p.attach_detector(det)
        # Plant: confirm a live *subscriber* dead — the liveness shun
        # (and the torn-down routing-table edges) must explain its miss.
        topic = next(t for t in p.topics() if len(p.subscribers(t)) >= 3)
        subs = sorted(p.subscribers(topic))
        publisher, victim = subs[0], subs[-1]
        det.force_confirm(victim)
        disseminate(p, topic, publisher, event_id=0)
        report = audit_trace(
            [json.loads(line) for line in buf.getvalue().splitlines()]
        )
        assert report.n_events == 1
        assert report.cause_totals().get("false_eviction", 0) >= 1
        assert report.ok, [vars(e) for e in report.failures()]

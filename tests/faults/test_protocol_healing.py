"""Protocol-level fault injection and self-healing.

Covers the attach/detach contract, lookup timeout-and-retry with
route-around, relay-tree repair after rendezvous crashes, and the
heartbeat-eviction path (``age_and_evict`` / OPT ``prune_dead``) under
sustained crash churn.
"""

import random

import pytest

from repro.baselines.opt import OptProtocol
from repro.core.config import VitisConfig
from repro.core.protocol import VitisProtocol
from repro.core.routing_table import LinkKind, RoutingTable
from repro.faults import (
    FaultModel,
    HealingPolicy,
    MessageLoss,
    Partition,
    crash_nodes,
)
from repro.gossip.view import Descriptor
from tests.conftest import small_subscriptions


class _DropFirstLookups(FaultModel):
    """Eats the first ``n`` lookup transmissions, nothing else."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self._remaining = n

    def drop(self, src, dst, kind, now):
        if kind == "lookup" and self._remaining > 0:
            self._remaining -= 1
            self.injected += 1
            return True
        return False


def _small_vitis(seed: int = 5, cycles: int = 40) -> VitisProtocol:
    p = VitisProtocol(
        small_subscriptions(seed=seed),
        VitisConfig(rt_size=10, n_sw_links=1),
        seed=seed,
        election_every=0,
        relay_every=0,
    )
    p.run_cycles(cycles)
    p.finalize()
    return p


def _small_opt(seed: int = 5, cycles: int = 15) -> OptProtocol:
    p = OptProtocol(
        small_subscriptions(seed=seed),
        VitisConfig(rt_size=10),
        seed=seed,
    )
    p.run_cycles(cycles)
    return p


class TestAttachFaults:
    def test_attach_reaches_the_network(self):
        p = _small_vitis(cycles=5)
        model = MessageLoss(0.1, random.Random(0))
        healing = HealingPolicy()
        p.attach_faults(model, healing)
        assert p.fault_model is model and p.network.fault_model is model
        assert p.healing is healing

    def test_detach_restores_the_perfect_transport(self):
        p = _small_vitis(cycles=5)
        p.attach_faults(MessageLoss(0.1, random.Random(0)), HealingPolicy())
        p.attach_faults(None)
        assert p.fault_model is None and p.network.fault_model is None
        assert p.healing is None
        # The transport's telemetry is wired at construction (drop events
        # flow regardless of fault state), not managed by attach/detach.
        assert p.network.telemetry is p.telemetry


class TestLookupHealing:
    def test_zero_rate_model_is_transparent(self):
        """With a rate-0 model attached the faulted lookup path must find
        the exact same rendezvous as the plain path (same tie-breaks)."""
        p = _small_vitis()
        starts = sorted(p.live_addresses())[:10]
        tids = [p.topic_id(t) for t in p.topics()[:10]]
        plain = [p.lookup(s, t).path for s, t in zip(starts, tids)]

        class _NoDraw:
            def random(self):  # pragma: no cover - regression only
                raise AssertionError("rate-0 model must not draw")

        p.attach_faults(MessageLoss(0.0, _NoDraw()), HealingPolicy())
        faulted = [p.lookup(s, t).path for s, t in zip(starts, tids)]
        assert faulted == plain
        assert p.fault_retries == 0

    def test_total_loss_exhausts_bounded_retries(self):
        p = _small_vitis()
        start = sorted(p.live_addresses())[0]
        # A target the start node must actually route toward (hops > 0);
        # a start that is already the local minimum never needs a link.
        tid = next(
            p.topic_id(t) for t in p.topics()
            if p.lookup(start, p.topic_id(t)).hops > 0
        )
        p.attach_faults(
            MessageLoss(1.0, random.Random(0)),
            HealingPolicy(lookup_attempts=3),
        )
        result = p.lookup(start, tid)
        assert not result.success
        assert p.fault_retries == 2  # attempts - 1, all spent

    def test_single_drop_is_routed_around(self):
        """One eaten next-hop falls back to the next-best candidate within
        the same attempt — the lookup still succeeds, zero retries."""
        p = _small_vitis()
        start = sorted(p.live_addresses())[0]
        tid = next(
            p.topic_id(t) for t in p.topics()
            if p.lookup(start, p.topic_id(t)).hops > 0
        )
        model = _DropFirstLookups(1)
        p.attach_faults(model, HealingPolicy(lookup_attempts=3))
        result = p.lookup(start, tid)
        assert result.success
        assert model.injected == 1
        assert p.fault_retries == 0

    def test_faulted_lookup_is_deterministic(self):
        p = _small_vitis()
        start = sorted(p.live_addresses())[0]
        tid = p.topic_id(p.topics()[3])
        paths = []
        for _ in range(2):
            p.attach_faults(MessageLoss(0.5, random.Random(9)), HealingPolicy())
            r = p.lookup(start, tid)
            paths.append((r.path, r.success))
        assert paths[0] == paths[1]


class TestRepairRelays:
    def test_noop_on_a_healthy_system(self):
        p = _small_vitis()
        assert p.repair_relays() == 0
        assert p.fault_repairs == 0

    def test_rendezvous_crash_is_repaired(self):
        p = _small_vitis()
        # Pick a rendezvous that roots at least one subscribed topic.
        rv_topics = {}
        for topic, rv in p.relay_stats.rendezvous.items():
            if p.subscribers(topic):
                rv_topics.setdefault(rv, []).append(topic)
        rv, topics = max(rv_topics.items(), key=lambda kv: len(kv[1]))
        crash_nodes(p, (rv,))

        repaired = p.repair_relays()
        assert repaired >= len(topics)
        assert p.fault_repairs == repaired
        # Every repaired topic roots at a live node again.
        for topic in topics:
            new_rv = p.relay_stats.rendezvous.get(topic)
            assert new_rv is not None and p.is_alive(new_rv)
        # Delivery over the repaired trees is complete again.
        topic = topics[0]
        pub = sorted(p.subscribers(topic))[0]
        rec = p.publish(topic, pub)
        assert set(rec.delivered_hops) == set(rec.subscribers)

    def test_dead_parent_is_repaired(self):
        p = _small_vitis()
        # Crash an interior relay (a parent that is not itself the root).
        victim = None
        for topic, rv in p.relay_stats.rendezvous.items():
            for node in p.nodes.values():
                if not node.alive:
                    continue
                parent = node.relay.parent.get(topic)
                if parent is not None and parent != rv and p.is_alive(parent):
                    victim = parent
                    break
            if victim is not None:
                break
        assert victim is not None, "no interior relay found"
        crash_nodes(p, (victim,))
        assert p.repair_relays() >= 1
        # No live node keeps a dead parent afterwards.
        for node in p.nodes.values():
            if node.alive:
                for parent in node.relay.parent.values():
                    assert p.is_alive(parent)


class TestAgeAndEvictUnit:
    def _table(self):
        rt = RoutingTable(owner=0, max_size=4)
        rt.replace([
            (Descriptor(1, 100), LinkKind.SUCCESSOR),
            (Descriptor(2, 200), LinkKind.PREDECESSOR),
            (Descriptor(3, 300), LinkKind.FRIEND),
        ])
        return rt

    def test_dead_evicted_exactly_past_threshold(self):
        rt = self._table()
        alive = lambda a: a != 3
        threshold = 5
        for _ in range(threshold):
            assert rt.age_and_evict(alive, threshold) == []
        assert rt.age_and_evict(alive, threshold) == [3]
        assert 3 not in rt

    def test_live_neighbors_never_evicted(self):
        rt = self._table()
        for _ in range(50):
            assert rt.age_and_evict(lambda a: True, 5) == []
        assert sorted(rt.addresses) == [1, 2, 3]
        assert all(e.age == 0 for e in rt.entries())

    def test_reappearing_neighbor_resets_its_age(self):
        rt = self._table()
        threshold = 5
        for _ in range(threshold):
            rt.age_and_evict(lambda a: a != 3, threshold)
        # It answers once just in time: the age resets, nothing is evicted.
        assert rt.age_and_evict(lambda a: True, threshold) == []
        assert rt.age_and_evict(lambda a: a != 3, threshold) == []
        assert 3 in rt


class TestEvictionUnderChurn:
    def test_vitis_routing_tables_shed_crashed_nodes(self):
        """Sustained crash waves: every corpse disappears from every live
        routing table within a small multiple of the staleness threshold
        (a corpse can be re-learned from a stale gossip view, which
        restarts its age clock — the exact one-threshold bound holds at
        the table level, see ``TestAgeAndEvictUnit``)."""
        p = _small_vitis()
        threshold = p.config.staleness_threshold
        rng = random.Random(17)
        dead = set()

        def corpses_linked():
            return any(
                dead & set(node.rt.addresses)
                for node in p.nodes.values() if node.alive
            )

        for _wave in range(3):
            live = sorted(p.live_addresses())
            victims = rng.sample(live, 5)
            crash_nodes(p, victims)
            dead.update(victims)
            for _ in range(8 * threshold):
                p.run_cycles(1)
                if not corpses_linked():
                    break
            assert not corpses_linked()
        assert p.live_count() == 80 - len(dead)

    def test_opt_prunes_crashed_neighbors(self):
        p = _small_opt()
        rng = random.Random(3)
        victims = rng.sample(sorted(p.live_addresses()), 10)
        crash_nodes(p, victims)
        p.run_cycles(1)  # prune_dead runs every cycle
        dead = set(victims)
        for node in p.nodes.values():
            if node.alive:
                assert not dead & node.neighbors

    def test_opt_prunes_severed_neighbors_while_partitioned(self):
        p = _small_opt()
        live = sorted(p.live_addresses())
        model = Partition.halves(
            live, start=p.engine.now, heal_at=float("inf")
        )
        p.attach_faults(model, HealingPolicy())
        p.run_cycles(1)
        group = model._group_of
        for node in p.nodes.values():
            if node.alive:
                for b in node.neighbors:
                    assert group[b] == group[node.address]

"""Healing under composed faults (satellite of the SWIM detector PR).

One run stacking i.i.d. loss + a healing partition + crash churn, with
span tracing on: every delivery miss must be attributed to a concrete
cause (zero unexplained), and the repair machinery must *converge* after
the partition heals — ``fault_repairs`` stops growing once the trees
have been rebuilt around the corpses.
"""

import io
import json
import random

from repro import obs
from repro.core.config import VitisConfig
from repro.core.dissemination import disseminate
from repro.core.protocol import VitisProtocol
from repro.faults import (
    CompositeFault,
    HealingPolicy,
    MessageLoss,
    Partition,
    crash_nodes,
)
from repro.obs.audit import audit_trace
from tests.conftest import small_subscriptions


def _traced_vitis():
    buf = io.StringIO()
    tel = obs.Telemetry(trace=obs.TraceWriter(buf, flush_every=1))
    p = VitisProtocol(
        small_subscriptions(seed=7),
        VitisConfig(rt_size=10, n_sw_links=1),
        seed=7,
        election_every=0,
        relay_every=0,
        telemetry=tel,
    )
    p.run_cycles(40)
    p.finalize()
    return p, buf


class TestComposedFaults:
    def test_audit_clean_and_repairs_converge(self):
        p, buf = _traced_vitis()
        period = p.config.gossip_period
        live = sorted(p.live_addresses())
        model = CompositeFault([
            MessageLoss(0.05, random.Random(11)),
            Partition.halves(
                live, start=p.engine.now, heal_at=p.engine.now + 8 * period
            ),
        ])
        p.attach_faults(model, HealingPolicy())
        crash_nodes(p, random.Random(3).sample(live, 6))

        # Ride out the partition, then let the overlay re-knit.
        p.run_cycles(10)
        assert model.injected > 0
        p.run_cycles(15)

        # Convergence: with the partition healed and no new corpses, the
        # repair counter stops moving.
        settled = p.fault_repairs
        p.run_cycles(8)
        assert p.fault_repairs == settled

        # Every post-heal miss is explained (loss is still active, so
        # misses are allowed — unattributed ones are not).
        for topic in p.topics()[:20]:
            subs = sorted(p.subscribers(topic))
            if subs:
                disseminate(p, topic, subs[0], event_id=topic)
        report = audit_trace(
            [json.loads(line) for line in buf.getvalue().splitlines()]
        )
        assert report.n_events > 0
        assert report.unexplained_total == 0, [
            vars(e) for e in report.failures()
        ]
        assert report.ok

    def test_detector_keeps_the_audit_clean_too(self):
        """Same composition with the SWIM detector attached: suspicion
        (not timeout) drives eviction and the audit still closes."""
        from repro.faults import DetectorConfig, SwimDetector

        p, buf = _traced_vitis()
        period = p.config.gossip_period
        live = sorted(p.live_addresses())
        model = CompositeFault([
            MessageLoss(0.05, random.Random(11)),
            Partition.halves(
                live, start=p.engine.now, heal_at=p.engine.now + 8 * period
            ),
        ])
        p.attach_faults(model, HealingPolicy())
        p.attach_detector(SwimDetector(random.Random(4), DetectorConfig()))
        crash_nodes(p, random.Random(3).sample(live, 6))
        p.run_cycles(25)

        for topic in p.topics()[:20]:
            subs = sorted(p.subscribers(topic))
            if subs:
                disseminate(p, topic, subs[0], event_id=topic)
        report = audit_trace(
            [json.loads(line) for line in buf.getvalue().splitlines()]
        )
        assert report.n_events > 0
        assert report.unexplained_total == 0, [
            vars(e) for e in report.failures()
        ]
        assert report.ok

"""Tests for the composable transport fault models."""

import random

import pytest

from repro.faults.models import (
    CompositeFault,
    FaultModel,
    LinkLoss,
    MessageLoss,
    Partition,
    SlowLinks,
    _stable_unit,
)


class _PoisonedRng:
    """An RNG whose use is a test failure (zero-cost-off verification)."""

    def random(self):  # pragma: no cover - only hit on regression
        raise AssertionError("RNG consulted on a path that must not draw")


class TestFaultModelBase:
    def test_perfect_network(self):
        m = FaultModel()
        assert not m.drop(1, 2, "notify", 0.0)
        assert not m.severed(1, 2, 0.0)
        assert m.extra_delay(1, 2, 0.0) == 0.0
        assert m.injected == 0
        assert m.describe() == {"model": "none"}


class TestMessageLoss:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            MessageLoss(1.5, random.Random(0))
        with pytest.raises(ValueError):
            MessageLoss(-0.1, random.Random(0))

    def test_zero_rate_draws_no_randomness(self):
        m = MessageLoss(0.0, _PoisonedRng())
        for _ in range(100):
            assert not m.drop(1, 2, "notify", 0.0)
        assert m.injected == 0

    def test_rate_one_drops_everything(self):
        m = MessageLoss(1.0, random.Random(7))
        assert all(m.drop(1, 2, "notify", 0.0) for _ in range(50))
        assert m.injected == 50

    def test_empirical_rate(self):
        m = MessageLoss(0.2, random.Random(3))
        drops = sum(m.drop(1, 2, "notify", 0.0) for _ in range(5000))
        assert 0.15 < drops / 5000 < 0.25

    def test_deterministic_under_seed(self):
        seqs = []
        for _ in range(2):
            m = MessageLoss(0.3, random.Random(11))
            seqs.append([m.drop(i, i + 1, "notify", 0.0) for i in range(200)])
        assert seqs[0] == seqs[1]

    def test_never_severed(self):
        # Loss is stochastic, not structural: repair must not key off it.
        m = MessageLoss(1.0, random.Random(0))
        assert not m.severed(1, 2, 0.0)


class TestLinkLoss:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkLoss(2.0, random.Random(0))
        with pytest.raises(ValueError):
            LinkLoss(0.1, random.Random(0), lossy_fraction=-0.5)

    def test_link_rate_is_stable(self):
        m = LinkLoss(0.4, random.Random(0), lossy_fraction=0.5, salt=3)
        rates = {(s, d): m.link_rate(s, d) for s in range(20) for d in range(20)}
        for (s, d), r in rates.items():
            assert m.link_rate(s, d) == r  # repeated queries agree
            assert r in (0.0, 0.4)

    def test_lossy_fraction_selects_roughly_that_share(self):
        m = LinkLoss(1.0, random.Random(0), lossy_fraction=0.3, salt=1)
        links = [(s, d) for s in range(40) for d in range(40) if s != d]
        lossy = sum(m.link_rate(s, d) > 0 for s, d in links)
        assert 0.2 < lossy / len(links) < 0.4

    def test_perfect_links_draw_no_randomness(self):
        m = LinkLoss(1.0, _PoisonedRng(), lossy_fraction=0.0)
        assert not m.drop(1, 2, "notify", 0.0)

    def test_lossy_link_drops_at_rate_one(self):
        m = LinkLoss(1.0, random.Random(0), lossy_fraction=1.0)
        assert m.drop(1, 2, "notify", 0.0)
        assert m.injected == 1


class TestStableUnit:
    def test_in_unit_interval_and_directed(self):
        vals = [_stable_unit(0, s, d) for s in range(30) for d in range(30)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert _stable_unit(0, 3, 7) != _stable_unit(0, 7, 3)

    def test_salt_changes_the_mapping(self):
        a = [_stable_unit(0, s, s + 1) for s in range(50)]
        b = [_stable_unit(1, s, s + 1) for s in range(50)]
        assert a != b


class TestPartition:
    def test_severs_only_cross_group_during_window(self):
        p = Partition(([1, 2], [3, 4]), start=10.0, heal_at=20.0)
        assert not p.severed(1, 3, 5.0)  # before start
        assert p.severed(1, 3, 10.0)
        assert p.severed(3, 1, 15.0)
        assert not p.severed(1, 2, 15.0)  # same group
        assert not p.severed(1, 3, 20.0)  # healed

    def test_unknown_nodes_unaffected(self):
        p = Partition(([1], [2]), start=0.0)
        assert not p.severed(1, 99, 5.0)
        assert not p.severed(99, 98, 5.0)

    def test_drop_is_deterministic_and_counted(self):
        p = Partition(([1], [2]), start=0.0, heal_at=10.0)
        assert p.drop(1, 2, "notify", 5.0)
        assert not p.drop(1, 2, "notify", 10.0)
        assert p.injected == 1

    def test_heal_before_start_rejected(self):
        with pytest.raises(ValueError):
            Partition(([1], [2]), start=5.0, heal_at=1.0)

    def test_halves_split_evenly_and_deterministically(self):
        addrs = list(range(11))
        p1 = Partition.halves(addrs, start=0.0)
        p2 = Partition.halves(addrs, start=0.0)
        groups1 = {}
        for a in addrs:
            groups1.setdefault(p1._group_of[a], []).append(a)
        assert sorted(len(g) for g in groups1.values()) == [5, 6]
        assert p1._group_of == p2._group_of
        # Shuffled split is deterministic under a seeded RNG too.
        p3 = Partition.halves(addrs, rng=random.Random(5))
        p4 = Partition.halves(addrs, rng=random.Random(5))
        assert p3._group_of == p4._group_of


class TestSlowLinks:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlowLinks(-1.0)
        with pytest.raises(ValueError):
            SlowLinks(1.0, slow_fraction=1.5)

    def test_delay_is_stable_and_fractional(self):
        m = SlowLinks(2.5, slow_fraction=0.25, salt=2)
        links = [(s, d) for s in range(40) for d in range(40) if s != d]
        delays = {l: m.extra_delay(*l, 0.0) for l in links}
        assert set(delays.values()) <= {0.0, 2.5}
        slow = sum(v > 0 for v in delays.values())
        assert 0.15 < slow / len(links) < 0.35
        for (s, d), v in delays.items():
            assert m.extra_delay(s, d, 99.0) == v

    def test_never_drops(self):
        m = SlowLinks(5.0, slow_fraction=1.0)
        assert not m.drop(1, 2, "notify", 0.0)
        assert m.injected == 0


class TestCompositeFault:
    def test_first_model_claims_the_drop(self):
        always = MessageLoss(1.0, random.Random(0))
        never = MessageLoss(0.0, _PoisonedRng())
        c = CompositeFault([always, never])
        assert c.drop(1, 2, "notify", 0.0)
        assert always.injected == 1 and never.injected == 0
        assert c.injected == 1

    def test_severed_if_any_constituent_severs(self):
        c = CompositeFault([MessageLoss(0.0, _PoisonedRng()),
                            Partition(([1], [2]), start=0.0)])
        assert c.severed(1, 2, 5.0)
        assert not c.severed(1, 1, 5.0)

    def test_delays_add(self):
        c = CompositeFault([SlowLinks(1.0, slow_fraction=1.0),
                            SlowLinks(0.5, slow_fraction=1.0)])
        assert c.extra_delay(1, 2, 0.0) == pytest.approx(1.5)

    def test_describe_nests_parts(self):
        c = CompositeFault([MessageLoss(0.1, random.Random(0))])
        d = c.describe()
        assert d["model"] == "composite"
        assert d["parts"][0]["model"] == "loss"
